// Package cpu is the trace-driven processor model: the substrate the
// paper evaluates every prefetcher on (§IV-A). It models:
//
//   - A decoupled front-end: a branch-prediction engine forms fetch
//     blocks (maximal runs of instructions on one cache line along the
//     correct path) into an FTQ, and the L1I lookup for a block is
//     issued when the block enters the FTQ — fetch-directed
//     prefetching, whose lookups are demand accesses, exactly as the
//     paper's baseline states.
//   - A seven-stage pipeline with different branch-misprediction
//     penalties depending on the stage that detects the redirect (BTB
//     miss at decode, direction/target misprediction at execute).
//   - An out-of-order backend as an interval model: a ROB-occupancy
//     ring provides dispatch backpressure, loads stall retirement with
//     real L1D/L2/LLC/DRAM latencies, and retire bandwidth is bounded.
//
// IPC, miss ratios and all prefetcher metrics come out of one pass over
// the instruction stream; every run is deterministic.
package cpu

import (
	"context"
	"errors"

	"entangling/internal/bpred"
	"entangling/internal/cache"
	"entangling/internal/prefetch"
	"entangling/internal/stats"
	"entangling/internal/trace"
)

// Config assembles the machine. DefaultConfig models the paper's
// Sunny-Cove-like baseline (Table III).
type Config struct {
	// FetchWidth is instructions fetched per cycle from a ready block.
	FetchWidth int
	// RetireWidth is instructions retired per cycle.
	RetireWidth int
	// ROBSize bounds in-flight instructions.
	ROBSize int
	// FrontDepth is the fetch-to-dispatch depth in cycles.
	FrontDepth uint64
	// FTQDepth is how many fetch blocks the prediction engine may run
	// ahead of fetch (the decoupled front-end's natural prefetch reach).
	FTQDepth int
	// BTBMissPenalty is the redirect penalty for taken branches whose
	// target was not in the BTB (detected at decode).
	BTBMissPenalty uint64
	// MispredictPenalty is the redirect penalty for direction/target
	// mispredictions (detected at execute).
	MispredictPenalty uint64

	L1I  cache.ICacheConfig
	L1D  cache.TimingConfig
	L2   cache.TimingConfig
	LLC  cache.TimingConfig
	DRAM cache.DRAMConfig
	Pred bpred.Config

	// Prefetcher constructs the L1I prefetcher; nil means none.
	Prefetcher prefetch.Factory

	// PhysicalAddresses trains the whole hierarchy (and therefore the
	// prefetcher) on physical line addresses through a 4KB-page
	// translator, as in §IV-E.
	PhysicalAddresses bool
	// TranslatorSalt decorrelates page mappings between workloads.
	TranslatorSalt uint64

	// ExtraL1IListener, when set, also receives every L1I event (used
	// by the oracle look-ahead study of Figures 1-2).
	ExtraL1IListener cache.Listener
	// BranchHook, when set, receives every branch event in addition to
	// the prefetcher.
	BranchHook func(prefetch.BranchEvent)
}

// DefaultConfig returns the baseline machine of Table III.
func DefaultConfig() Config {
	return Config{
		FetchWidth:        6,
		RetireWidth:       6,
		ROBSize:           352,
		FrontDepth:        5,
		FTQDepth:          24,
		BTBMissPenalty:    3,
		MispredictPenalty: 2,
		L1I: cache.ICacheConfig{
			Sets: 64, Ways: 8, Latency: 4, MSHRs: 10, PQSize: 32, PQIssuePerCycle: 2,
		},
		L1D: cache.TimingConfig{Name: "L1D", Sets: 64, Ways: 12, Latency: 5, ServiceInterval: 0},
		L2:  cache.TimingConfig{Name: "L2", Sets: 1024, Ways: 8, Latency: 14, ServiceInterval: 1},
		LLC: cache.TimingConfig{Name: "LLC", Sets: 2048, Ways: 16, Latency: 34, ServiceInterval: 2},
		DRAM: cache.DRAMConfig{
			Latency: 200, ServiceInterval: 8, JitterMask: 0x3F,
		},
	}
}

// Results summarizes one run.
type Results struct {
	// PrefetcherName is the active configuration ("no" when none).
	PrefetcherName string
	// StorageBits is the prefetcher's hardware budget.
	StorageBits uint64

	Instructions uint64
	Cycles       uint64
	IPC          float64

	L1I       cache.Stats
	L1D       cache.Stats
	L2        cache.Stats
	LLC       cache.Stats
	DRAMReads uint64

	CondAccuracy float64
	BTBMisses    uint64
	Redirects    uint64

	// FetchBlocks is the number of fetch blocks formed (L1I demand
	// accesses issued by the front-end).
	FetchBlocks uint64

	// Lifecycle breaks prefetches down by fate (timely / late /
	// early-evicted / inaccurate) with the cycles late prefetches
	// still saved.
	Lifecycle stats.PrefetchLifecycle
	// LeadP50 and LeadP99 are the median and 99th-percentile
	// fill-to-first-use leads (cycles) of the timely prefetches in this
	// window. The underlying histogram is snapshot at window start and
	// diffed like every other counter, so warmup samples never leak
	// into measured quantiles. Zero when the window had no timely
	// prefetch with a recorded lead.
	LeadP50 int
	LeadP99 int
	// Stalls attributes front-end and dispatch stall cycles to their
	// causes; Stalls.Total() is the complete attributed count.
	Stalls stats.StallBreakdown
}

// L1IMPKI returns L1I demand misses per kilo-instruction.
func (r *Results) L1IMPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.L1I.Misses) / float64(r.Instructions) * 1000
}

// L1IHitRate returns the L1I demand hit rate.
func (r *Results) L1IHitRate() float64 {
	if r.L1I.Accesses == 0 {
		return 0
	}
	return float64(r.L1I.Hits) / float64(r.L1I.Accesses)
}

// runState is the Machine's lifecycle position. A Machine moves
// strictly forward: idle (fresh from New) -> warm (warmup window
// consumed) -> done (measurement finished, or the run was canceled /
// single-window). The state gates every entry point, so reusing a
// consumed machine — which would silently fold one run's warmed
// microarchitectural state into the next run's "warmup" — fails loudly
// instead of corrupting windowed statistics.
type runState uint8

const (
	stateIdle runState = iota
	stateWarm
	stateDone
)

// ErrMachineUsed reports an attempt to run or fork a Machine whose run
// already completed (or was canceled partway). Build a new Machine
// with New, or Fork a warm one.
var ErrMachineUsed = errors.New("cpu: machine already consumed by a previous run")

// ErrNotWarmed reports a measurement or Fork on a machine that has not
// completed a warmup window.
var ErrNotWarmed = errors.New("cpu: machine has no completed warmup window")

// ErrNotForkable reports a Fork of a machine whose configuration pins
// state Fork cannot deep-copy: an external L1I listener or branch
// hook, or a prefetcher that does not implement prefetch.Forkable.
// Such configurations simply stay on the sequential warmup path.
var ErrNotForkable = errors.New("cpu: machine configuration does not support forking")

// Machine is an assembled simulator instance. Build one per run.
type Machine struct {
	cfg Config

	state runState

	icache  *cache.ICache
	l1d     *cache.TimingCache
	l2      *cache.TimingCache
	llc     *cache.TimingCache
	dram    *cache.DRAM
	pred    *bpred.Predictor
	pf      prefetch.Prefetcher
	trans   cache.Translator
	tracker *cache.LifecycleTracker

	// stalls accumulates cycle attribution; redirectFromBTB records
	// the cause of the pending redirect for bucketing.
	stalls          stats.StallBreakdown
	redirectFromBTB bool

	// Front-end cycle trackers.
	nextPredict uint64
	nextFetch   uint64
	redirect    uint64
	ftqRing     []uint64 // fetchStart of block i stored at i%FTQDepth
	blockIdx    uint64
	ftqPos      int // blockIdx % FTQDepth, kept as a wrapping cursor

	// Backend rings. robPos/widthPos track instrIdx modulo each ring
	// length as wrapping cursors, avoiding per-instruction divides.
	robRing    []uint64 // retire cycle of instruction i at i%ROBSize
	widthRing  []uint64 // retire cycles of the last RetireWidth instrs
	robPos     int
	widthPos   int
	lastRetire uint64

	instrIdx uint64

	// Block-formation state (persists across run windows).
	haveBlock   bool
	curVirtLine uint64
	fetchStart  uint64
	blockCount  int
	forceBlock  bool
	blocks      uint64
	redirects   uint64
}

// teeListener fans L1I events out to the prefetcher and an extra
// observer.
type teeListener struct {
	a, b cache.Listener
}

func (t teeListener) OnAccess(e cache.AccessEvent) { t.a.OnAccess(e); t.b.OnAccess(e) }
func (t teeListener) OnFill(e cache.FillEvent)     { t.a.OnFill(e); t.b.OnFill(e) }
func (t teeListener) OnEvict(e cache.EvictEvent)   { t.a.OnEvict(e); t.b.OnEvict(e) }

// listenerAdapter exposes a Prefetcher as a cache.Listener.
type listenerAdapter struct{ p prefetch.Prefetcher }

func (l listenerAdapter) OnAccess(e cache.AccessEvent) { l.p.OnAccess(e) }
func (l listenerAdapter) OnFill(e cache.FillEvent)     { l.p.OnFill(e) }
func (l listenerAdapter) OnEvict(e cache.EvictEvent)   { l.p.OnEvict(e) }

// New assembles a machine from cfg.
func New(cfg Config) *Machine {
	m := &Machine{cfg: cfg}
	m.dram = cache.NewDRAM(cfg.DRAM)
	m.llc = cache.NewTimingCache(cfg.LLC, m.dram)
	m.l2 = cache.NewTimingCache(cfg.L2, m.llc)
	m.l1d = cache.NewTimingCache(cfg.L1D, m.l2)
	m.icache = cache.NewICache(cfg.L1I, m.l2, nil)
	m.pred = bpred.New(cfg.Pred)
	m.trans = cache.Translator{Salt: cfg.TranslatorSalt}

	if cfg.Prefetcher != nil {
		m.pf = cfg.Prefetcher(m.icache)
	} else {
		m.pf = prefetch.NewNone(m.icache)
	}
	// The lifecycle tracker observes every L1I event after the
	// prefetcher and routes late/useless feedback back to it when the
	// prefetcher cares (implements cache.FeedbackSink).
	sink, _ := m.pf.(cache.FeedbackSink)
	m.tracker = cache.NewLifecycleTracker(sink)
	var listener cache.Listener = teeListener{a: listenerAdapter{m.pf}, b: m.tracker}
	if cfg.ExtraL1IListener != nil {
		listener = teeListener{a: listener, b: cfg.ExtraL1IListener}
	}
	m.icache.SetListener(listener)

	if cfg.FTQDepth < 1 {
		m.cfg.FTQDepth = 1
	}
	m.ftqRing = make([]uint64, m.cfg.FTQDepth)
	m.robRing = make([]uint64, cfg.ROBSize)
	m.widthRing = make([]uint64, cfg.RetireWidth)
	return m
}

// Prefetcher exposes the active prefetcher (for per-prefetcher stats
// such as Entangling's compression histograms).
func (m *Machine) Prefetcher() prefetch.Prefetcher { return m.pf }

// LeadHistogram exposes the fill-to-first-use lead distribution of
// timely prefetches accumulated since construction (an observability
// hook). Windowed results do not read it directly: resultsSince
// snapshots and diffs the histogram like every other counter, so the
// quantiles in Results cover the measurement window only.
func (m *Machine) LeadHistogram() *stats.Histogram { return m.tracker.LeadHistogram() }

// Consumed returns how many instructions the machine has consumed from
// its source — the trace-position handle a forked machine's caller
// uses to advance a fresh SliceSource to the shared warmup boundary.
func (m *Machine) Consumed() uint64 { return m.instrIdx }

// Warmed reports whether the machine holds a completed warmup window
// and may be forked or measured.
func (m *Machine) Warmed() bool { return m.state == stateWarm }

// fetchLine maps an instruction byte address to the line address the
// hierarchy operates on.
func (m *Machine) fetchLine(pc uint64) uint64 {
	l := cache.LineAddr(pc)
	if m.cfg.PhysicalAddresses {
		return m.trans.Translate(l)
	}
	return l
}

// snapshot captures the counters needed to compute windowed results.
type snapshot struct {
	l1i, l1d, l2, llc cache.Stats
	dramReads         uint64
	condLookups       uint64
	dirMispredicts    uint64
	btbMisses         uint64
	redirects         uint64
	blocks            uint64
	instrs            uint64
	cycle             uint64
	lifecycle         stats.PrefetchLifecycle
	stalls            stats.StallBreakdown
	// lead is a deep copy of the lead histogram at window start; nil
	// (the whole-run snapshot) means "diff against empty".
	lead *stats.Histogram
}

func (m *Machine) snap() snapshot {
	return snapshot{
		lead:           m.tracker.LeadHistogram().Clone(),
		l1i:            *m.icache.Stats(),
		l1d:            *m.l1d.Stats(),
		l2:             *m.l2.Stats(),
		llc:            *m.llc.Stats(),
		dramReads:      m.dram.Reads,
		condLookups:    m.pred.CondLookups,
		dirMispredicts: m.pred.DirMispredicts,
		btbMisses:      m.pred.BTBMisses,
		redirects:      m.redirects,
		blocks:         m.blocks,
		instrs:         m.instrIdx,
		cycle:          m.lastRetire,
		lifecycle:      m.tracker.Lifecycle(),
		stalls:         m.stalls,
	}
}

// Run consumes up to maxInstrs instructions from src and returns the
// run's results. A Machine must not be reused across runs: a second
// Run (or any run entry point) on a consumed machine panics with
// ErrMachineUsed.
func (m *Machine) Run(src trace.Source, maxInstrs uint64) Results {
	if m.state != stateIdle {
		panic(ErrMachineUsed)
	}
	m.state = stateDone
	m.consume(src, maxInstrs, nil)
	return m.resultsSince(snapshot{})
}

// RunWindows runs a warmup window whose statistics are discarded (the
// paper uses a 20M-instruction warm-up, §IV-A), then a measurement
// window, and returns results for the measurement window only. It
// panics with ErrMachineUsed on a consumed machine.
func (m *Machine) RunWindows(src trace.Source, warmup, measure uint64) Results {
	res, err := m.RunWindowsCtx(context.Background(), src, warmup, measure)
	if err != nil {
		// Background is uncancellable; only contract misuse gets here.
		panic(err)
	}
	return res
}

// RunWindowsCtx is RunWindows with cooperative cancellation: the hot
// loop polls ctx every cancelCheckInterval instructions and bails out
// with ctx's error (context.Canceled or context.DeadlineExceeded) when
// it fires. A canceled machine's partial state is consistent but its
// results are not returned — a sweep treats the cell as not-run.
// context.Background() has a nil Done channel, so the uncancellable
// path stays on the allocation-free fast loop with no select.
//
// It is exactly WarmupCtx followed by MeasureCtx — the same two halves
// the warmup-snapshot fork path runs on different machines — so the
// sequential and forked paths cannot drift apart.
func (m *Machine) RunWindowsCtx(ctx context.Context, src trace.Source, warmup, measure uint64) (Results, error) {
	if err := m.WarmupCtx(ctx, src, warmup); err != nil {
		return Results{}, err
	}
	return m.MeasureCtx(ctx, src, measure)
}

// WarmupCtx consumes the warmup window, moving the machine from idle
// to warm. A warm machine can be forked (Fork) and measured
// (MeasureCtx). A canceled warmup leaves the machine consumed (done):
// its partial state must never masquerade as a fresh warmup.
func (m *Machine) WarmupCtx(ctx context.Context, src trace.Source, warmup uint64) error {
	if m.state != stateIdle {
		return ErrMachineUsed
	}
	if !m.consume(src, warmup, ctx.Done()) {
		m.state = stateDone
		return ctx.Err()
	}
	m.state = stateWarm
	return nil
}

// MeasureCtx runs the measurement window on a warm machine and returns
// windowed results, moving it warm -> done. src must be positioned at
// the machine's consumption point (Consumed()) — for a forked machine,
// a fresh SliceSource over the shared trace advanced to that handle.
func (m *Machine) MeasureCtx(ctx context.Context, src trace.Source, measure uint64) (Results, error) {
	switch m.state {
	case stateIdle:
		return Results{}, ErrNotWarmed
	case stateDone:
		return Results{}, ErrMachineUsed
	}
	m.state = stateDone
	s := m.snap()
	if !m.consume(src, m.instrIdx+measure, ctx.Done()) {
		return Results{}, ctx.Err()
	}
	return m.resultsSince(s), nil
}

// cancelCheckInterval is how many instructions run between cancellation
// polls: at the simulator's millions of instructions per second this
// bounds cancellation latency to a few milliseconds while keeping the
// per-instruction cost to one masked compare.
const cancelCheckInterval = 1 << 14

// consume advances the pipeline until instrIdx reaches maxInstrs, the
// source ends, or done (when non-nil) fires. It reports whether the
// run may continue: false means it was canceled.
//
// Cancellation is polled between fixed-size chunks, never inside the
// hot loop: the uncancellable path (nil done) runs the whole window as
// one chunk, and the cancellable path pays one channel poll per
// cancelCheckInterval instructions — the per-instruction fast loop is
// identical in both cases, so the BENCH fingerprint and wall-clock
// are unaffected.
func (m *Machine) consume(src trace.Source, maxInstrs uint64, done <-chan struct{}) bool {
	// buf lives here, not in consumeChunk: src.Next(&buf) makes it
	// escape, and allocating it per chunk would charge cancellable
	// runs one heap allocation every cancelCheckInterval instructions.
	var buf trace.Instruction
	if done == nil {
		m.consumeChunk(src, maxInstrs, &buf)
		return true
	}
	for m.instrIdx < maxInstrs {
		select {
		case <-done:
			return false
		default:
		}
		limit := m.instrIdx + cancelCheckInterval
		if limit > maxInstrs {
			limit = maxInstrs
		}
		before := m.instrIdx
		m.consumeChunk(src, limit, &buf)
		if m.instrIdx == before {
			break // source exhausted
		}
	}
	return true
}

// consumeChunk advances the pipeline until instrIdx reaches maxInstrs
// or the source ends. buf is scratch for non-slice sources.
func (m *Machine) consumeChunk(src trace.Source, maxInstrs uint64, buf *trace.Instruction) {
	// Cached traces are in-memory slices: iterate them in place, sparing
	// the loop a per-instruction interface call and struct copy. The
	// instructions are read-only (one cached trace replays under many
	// configurations); consumed count is reported back via Advance.
	var span []trace.Instruction
	spanIdx := 0
	sliceSrc, fastPath := src.(*trace.SliceSource)
	if fastPath {
		span = sliceSrc.Remaining()
		defer func() { sliceSrc.Advance(spanIdx) }()
	}
	haveBlock := m.haveBlock
	curVirtLine := m.curVirtLine
	fetchStart := m.fetchStart
	blockCount := m.blockCount
	forceBlock := m.forceBlock
	// fetchOff/fetchSub track blockCount / and % FetchWidth
	// incrementally; one divide here replaces one per instruction.
	fw := m.cfg.FetchWidth
	fetchOff := uint64(blockCount / fw)
	fetchSub := blockCount % fw

	for m.instrIdx < maxInstrs {
		var in *trace.Instruction
		if fastPath {
			if spanIdx == len(span) {
				break
			}
			in = &span[spanIdx]
			spanIdx++
		} else {
			if !src.Next(buf) {
				break
			}
			in = buf
		}
		virtLine := cache.LineAddr(in.PC)

		if !haveBlock || forceBlock || virtLine != curVirtLine {
			// A new fetch block enters the FTQ.
			predictCycle := m.nextPredict
			if m.redirect > predictCycle {
				// Redirect stall: attribute to the stage that caught it.
				if m.redirectFromBTB {
					m.stalls.BTBMiss += m.redirect - predictCycle
				} else {
					m.stalls.Mispredict += m.redirect - predictCycle
				}
				predictCycle = m.redirect
			}
			// FTQ backpressure: the prediction engine may run at most
			// FTQDepth blocks ahead of fetch.
			if backCap := m.ftqRing[m.ftqPos]; backCap > predictCycle {
				m.stalls.FTQFull += backCap - predictCycle
				predictCycle = backCap
			}
			m.nextPredict = predictCycle + 1

			// Fetch-directed lookup: the L1I access happens now, at FTQ
			// insertion, possibly long before fetch consumes the block.
			lineReady := m.icache.DemandAccess(predictCycle, m.fetchLine(in.PC))
			m.blocks++

			// Fetch waits for the line beyond the earliest cycle a hit
			// would have allowed: that delay is L1I-induced (misses,
			// late prefetches, MSHR backpressure).
			noMissStart := m.nextFetch
			if hitReady := predictCycle + m.cfg.L1I.Latency; hitReady > noMissStart {
				noMissStart = hitReady
			}
			fetchStart = m.nextFetch
			if lineReady > fetchStart {
				fetchStart = lineReady
			}
			if fetchStart > noMissStart {
				m.stalls.L1IMiss += fetchStart - noMissStart
			}
			m.ftqRing[m.ftqPos] = fetchStart
			m.blockIdx++
			if m.ftqPos++; m.ftqPos == len(m.ftqRing) {
				m.ftqPos = 0
			}
			blockCount = 0
			fetchOff, fetchSub = 0, 0
			haveBlock = true
			curVirtLine = virtLine
			forceBlock = false
		}

		fetchCycle := fetchStart + fetchOff
		blockCount++
		if fetchSub++; fetchSub == fw {
			fetchSub = 0
			fetchOff++
		}
		m.nextFetch = fetchCycle + 1 // next block starts no earlier

		// Dispatch: front-end depth plus ROB backpressure.
		dispatch := fetchCycle + m.cfg.FrontDepth
		if prev := m.robRing[m.robPos]; prev > dispatch {
			m.stalls.ROBFull += prev - dispatch
			dispatch = prev
		}

		// Execute.
		execDone := dispatch + 1
		if in.IsLoad {
			addr := cache.LineAddr(in.DataAddr)
			if m.cfg.PhysicalAddresses {
				addr = m.trans.Translate(addr)
			}
			if ready := m.l1d.Access(dispatch, addr, false); ready > execDone {
				execDone = ready
			}
		} else if in.IsStore {
			addr := cache.LineAddr(in.DataAddr)
			if m.cfg.PhysicalAddresses {
				addr = m.trans.Translate(addr)
			}
			// Write-allocate; the store buffer hides the latency.
			m.l1d.Access(dispatch, addr, false)
		}

		// Branch handling.
		if in.Branch.IsBranch() {
			out := m.pred.Process(in)
			ev := prefetch.BranchEvent{
				Cycle:  fetchStart,
				PC:     in.PC,
				Type:   in.Branch,
				Taken:  in.Taken,
				Target: in.Target,
			}
			m.pf.OnBranch(ev)
			if m.cfg.BranchHook != nil {
				m.cfg.BranchHook(ev)
			}
			if out.Redirect() {
				m.redirects++
				var r uint64
				fromBTB := false
				if out.DirMispredict || out.TargetMispredict {
					r = execDone + m.cfg.MispredictPenalty
				} else { // BTB miss: caught at decode
					r = fetchCycle + m.cfg.BTBMissPenalty
					fromBTB = true
				}
				if r > m.redirect {
					m.redirect = r
					m.redirectFromBTB = fromBTB
				}
				forceBlock = true
			}
			if in.Taken {
				forceBlock = true
			}
		}

		// Retire: in order, bounded width.
		retire := execDone
		if retire < m.lastRetire {
			retire = m.lastRetire
		}
		if w := m.widthRing[m.widthPos] + 1; w > retire {
			retire = w
		}
		m.widthRing[m.widthPos] = retire
		m.robRing[m.robPos] = retire
		if m.widthPos++; m.widthPos == len(m.widthRing) {
			m.widthPos = 0
		}
		if m.robPos++; m.robPos == len(m.robRing) {
			m.robPos = 0
		}
		m.lastRetire = retire
		m.instrIdx++
	}

	m.haveBlock = haveBlock
	m.curVirtLine = curVirtLine
	m.fetchStart = fetchStart
	m.blockCount = blockCount
	m.forceBlock = forceBlock
}

// resultsSince builds Results for the window after snapshot s.
func (m *Machine) resultsSince(s snapshot) Results {
	// Let outstanding prefetches/fills settle for final stats.
	m.icache.AdvanceTo(m.lastRetire + 1000)

	res := Results{
		PrefetcherName: m.pf.Name(),
		StorageBits:    m.pf.StorageBits(),
		Instructions:   m.instrIdx - s.instrs,
		Cycles:         m.lastRetire - s.cycle,
		L1I:            m.icache.Stats().Sub(s.l1i),
		L1D:            m.l1d.Stats().Sub(s.l1d),
		L2:             m.l2.Stats().Sub(s.l2),
		LLC:            m.llc.Stats().Sub(s.llc),
		DRAMReads:      m.dram.Reads - s.dramReads,
		BTBMisses:      m.pred.BTBMisses - s.btbMisses,
		Redirects:      m.redirects - s.redirects,
		FetchBlocks:    m.blocks - s.blocks,
		Lifecycle:      m.tracker.Lifecycle().Sub(s.lifecycle),
		Stalls:         m.stalls.Sub(s.stalls),
	}
	// Window the lead distribution exactly like the counters above: the
	// quantiles are computed on (current - snapshot), so warmup-window
	// samples never leak into measured results. A nil snapshot (whole-
	// run Run) diffs against empty.
	lead := m.tracker.LeadHistogram()
	if s.lead != nil {
		lead = lead.Sub(s.lead)
	}
	if lead.Total() > 0 {
		res.LeadP50 = lead.Quantile(0.50)
		res.LeadP99 = lead.Quantile(0.99)
	}
	if lookups := m.pred.CondLookups - s.condLookups; lookups > 0 {
		res.CondAccuracy = 1 - float64(m.pred.DirMispredicts-s.dirMispredicts)/float64(lookups)
	} else {
		res.CondAccuracy = 1
	}
	if res.Cycles > 0 {
		res.IPC = float64(res.Instructions) / float64(res.Cycles)
	}
	return res
}
