package cpu

// Unit tests for individual pipeline mechanisms using hand-built
// instruction streams (no synthetic workload generator involved).

import (
	"testing"

	"entangling/internal/trace"
)

// loopSource yields a tight loop: n sequential 4-byte instructions
// starting at base, ending with a taken jump back to base.
func loopSource(base uint64, n int, repeats int) *trace.SliceSource {
	var instrs []trace.Instruction
	for r := 0; r < repeats; r++ {
		pc := base
		for i := 0; i < n-1; i++ {
			instrs = append(instrs, trace.Instruction{PC: pc, Size: 4})
			pc += 4
		}
		instrs = append(instrs, trace.Instruction{
			PC: pc, Size: 4, Branch: trace.DirectJump, Taken: true, Target: base,
		})
	}
	return &trace.SliceSource{Instrs: instrs}
}

func TestHotLoopIPCHigh(t *testing.T) {
	// A 30-instruction loop living in two cache lines: after warmup
	// everything hits and the jump is BTB-resident, so the machine
	// should sustain several instructions per cycle.
	src := loopSource(0x1000, 30, 2000)
	m := New(DefaultConfig())
	r := m.RunWindows(src, 10_000, 40_000)
	if r.IPC < 3 {
		t.Errorf("hot loop IPC = %.2f, want > 3", r.IPC)
	}
	if ratio := r.L1IHitRate(); ratio < 0.999 {
		t.Errorf("hot loop hit rate %.4f", ratio)
	}
}

func TestColdSequentialStreamBound(t *testing.T) {
	// A long never-repeating sequential stream: every 16th instruction
	// starts a new line that misses. IPC must be far below the hot-loop
	// case and every line should miss exactly once.
	var instrs []trace.Instruction
	pc := uint64(0x40_0000)
	for i := 0; i < 60_000; i++ {
		instrs = append(instrs, trace.Instruction{PC: pc, Size: 4})
		pc += 4
	}
	m := New(DefaultConfig())
	r := m.Run(&trace.SliceSource{Instrs: instrs}, uint64(len(instrs)))
	if r.L1I.Misses < uint64(len(instrs)/16-10) {
		t.Errorf("cold stream misses = %d, want ~%d", r.L1I.Misses, len(instrs)/16)
	}
	hot := New(DefaultConfig()).RunWindows(loopSource(0x1000, 30, 5000), 10_000, 40_000)
	if r.IPC >= hot.IPC {
		t.Errorf("cold stream IPC %.2f not below hot loop %.2f", r.IPC, hot.IPC)
	}
}

func TestFTQDepthHidesMissLatency(t *testing.T) {
	// The decoupled front-end's run-ahead (fetch-directed prefetching)
	// overlaps L1I misses. With FTQDepth=1 the lookups serialize, so
	// the same cold stream must take longer.
	mkStream := func() trace.Source {
		var instrs []trace.Instruction
		pc := uint64(0x40_0000)
		for i := 0; i < 30_000; i++ {
			instrs = append(instrs, trace.Instruction{PC: pc, Size: 4})
			pc += 4
		}
		return &trace.SliceSource{Instrs: instrs}
	}
	deep := DefaultConfig()
	shallow := DefaultConfig()
	shallow.FTQDepth = 1
	rDeep := New(deep).Run(mkStream(), 30_000)
	rShallow := New(shallow).Run(mkStream(), 30_000)
	if rDeep.Cycles >= rShallow.Cycles {
		t.Errorf("deep FTQ (%d cycles) should beat shallow FTQ (%d cycles)",
			rDeep.Cycles, rShallow.Cycles)
	}
}

func TestROBBoundsMemoryParallelism(t *testing.T) {
	// Independent long-latency loads: a larger ROB overlaps more of
	// them. Loads walk a huge region so each misses to DRAM.
	mkStream := func() trace.Source {
		var instrs []trace.Instruction
		pc := uint64(0x1000)
		data := uint64(0x10_0000_0000)
		for i := 0; i < 4000; i++ {
			in := trace.Instruction{PC: pc, Size: 4, IsLoad: true, DataAddr: data}
			instrs = append(instrs, in)
			pc += 4
			if pc%64 == 60 {
				// Stay within two cache lines of code via a loop jump.
				instrs[len(instrs)-1].Branch = trace.DirectJump
				instrs[len(instrs)-1].Taken = true
				instrs[len(instrs)-1].Target = 0x1000
				instrs[len(instrs)-1].IsLoad = false
				pc = 0x1000
			}
			data += 1 << 20 // a new DRAM row every load
		}
		return &trace.SliceSource{Instrs: instrs}
	}
	small := DefaultConfig()
	small.ROBSize = 16
	big := DefaultConfig()
	big.ROBSize = 512
	rSmall := New(small).Run(mkStream(), 4000)
	rBig := New(big).Run(mkStream(), 4000)
	if rBig.Cycles >= rSmall.Cycles {
		t.Errorf("big ROB (%d cycles) should beat small ROB (%d cycles)",
			rBig.Cycles, rSmall.Cycles)
	}
}

func TestMispredictPenaltyCosts(t *testing.T) {
	// Identical loops, one with a perfectly biased branch, one with an
	// alternating data-dependent branch the bimodal/gshare combo can
	// learn, one with a pseudo-random branch it cannot. The random one
	// must be slowest.
	mkLoop := func(pattern func(i int) bool) trace.Source {
		var instrs []trace.Instruction
		for i := 0; i < 20_000; i++ {
			// Body.
			for k := 0; k < 6; k++ {
				instrs = append(instrs, trace.Instruction{PC: 0x1000 + uint64(k)*4, Size: 4})
			}
			// Conditional branch whose outcome follows the pattern.
			instrs = append(instrs, trace.Instruction{
				PC: 0x1000 + 24, Size: 4, Branch: trace.CondBranch,
				Taken: pattern(i), Target: 0x1040,
			})
			if pattern(i) {
				// Taken path: one instruction then jump back.
				instrs = append(instrs, trace.Instruction{PC: 0x1040, Size: 4,
					Branch: trace.DirectJump, Taken: true, Target: 0x1000})
			} else {
				instrs = append(instrs, trace.Instruction{PC: 0x1000 + 28, Size: 4,
					Branch: trace.DirectJump, Taken: true, Target: 0x1000})
			}
		}
		return &trace.SliceSource{Instrs: instrs}
	}
	run := func(p func(i int) bool) Results {
		return New(DefaultConfig()).Run(mkLoop(p), 120_000)
	}
	biased := run(func(i int) bool { return true })
	lcg := 12345
	random := run(func(i int) bool {
		lcg = lcg*1103515245 + 12345
		return lcg>>16&1 == 1
	})
	if biased.CondAccuracy < 0.99 {
		t.Errorf("biased branch accuracy %.3f", biased.CondAccuracy)
	}
	if random.CondAccuracy > 0.85 {
		t.Errorf("random branch accuracy suspiciously high: %.3f", random.CondAccuracy)
	}
	if biased.Cycles >= random.Cycles {
		t.Errorf("mispredictions cost nothing: biased %d vs random %d cycles",
			biased.Cycles, random.Cycles)
	}
}

func TestRunWindowsEqualsManualDelta(t *testing.T) {
	// RunWindows(w, m) must equal the delta between full runs of w and
	// w+m instructions. A machine is single-use now (a second Run
	// panics — see TestMachineSingleUse in fork_test.go), so each run
	// gets its own machine over the same deterministic stream; the two
	// prefixes replay identically, making the delta exact.
	p := loopSource(0x1000, 30, 10_000)
	a := New(DefaultConfig())
	ra := a.RunWindows(p, 50_000, 50_000)

	r1 := New(DefaultConfig()).Run(loopSource(0x1000, 30, 10_000), 50_000)
	r2 := New(DefaultConfig()).Run(loopSource(0x1000, 30, 10_000), 100_000)
	if ra.Instructions != r2.Instructions-r1.Instructions {
		t.Errorf("instruction deltas differ: %d vs %d",
			ra.Instructions, r2.Instructions-r1.Instructions)
	}
	delta := r2.Cycles - r1.Cycles
	if delta != ra.Cycles {
		t.Errorf("cycle deltas diverge: %d vs %d", ra.Cycles, delta)
	}
	if ra.L1I.Accesses != r2.L1I.Accesses-r1.L1I.Accesses {
		t.Error("L1I access deltas differ")
	}
}

func TestEmptySource(t *testing.T) {
	m := New(DefaultConfig())
	r := m.Run(&trace.SliceSource{}, 1000)
	if r.Instructions != 0 || r.Cycles != 0 || r.IPC != 0 {
		t.Errorf("empty run: %+v", r)
	}
}

func TestBTBMissRedirectCheaperThanMispredict(t *testing.T) {
	// Stream A: taken direct jumps to round-robin targets — after the
	// BTB warms these are all hits, but we measure the COLD pass where
	// every jump is a BTB miss (decode-stage redirect).
	// Stream B: same structure, but conditional branches whose outcome
	// flips pseudo-randomly — execute-stage mispredicts.
	// With identical block structure, execute-detected redirects must
	// cost at least as much as decode-detected ones.
	mkJumps := func() trace.Source {
		var instrs []trace.Instruction
		targets := []uint64{0x1000, 0x2000, 0x3000, 0x4000}
		for i := 0; i < 8000; i++ {
			base := targets[i%4]
			for k := uint64(0); k < 3; k++ {
				instrs = append(instrs, trace.Instruction{PC: base + k*4, Size: 4})
			}
			instrs = append(instrs, trace.Instruction{PC: base + 12, Size: 4,
				Branch: trace.DirectJump, Taken: true, Target: targets[(i+1)%4]})
		}
		return &trace.SliceSource{Instrs: instrs}
	}
	mkRandomCond := func() trace.Source {
		var instrs []trace.Instruction
		targets := []uint64{0x1000, 0x2000}
		lcg := 99
		for i := 0; i < 8000; i++ {
			lcg = lcg*1103515245 + 12345
			taken := lcg>>16&1 == 1
			base := targets[i%2]
			for k := uint64(0); k < 3; k++ {
				instrs = append(instrs, trace.Instruction{PC: base + k*4, Size: 4})
			}
			br := trace.Instruction{PC: base + 12, Size: 4, Branch: trace.CondBranch,
				Taken: taken, Target: targets[(i+1)%2]}
			instrs = append(instrs, br)
			if !taken {
				// Fall-through path jumps to keep the loop structure.
				instrs = append(instrs, trace.Instruction{PC: base + 16, Size: 4,
					Branch: trace.DirectJump, Taken: true, Target: targets[(i+1)%2]})
			}
		}
		return &trace.SliceSource{Instrs: instrs}
	}
	jumps := New(DefaultConfig()).Run(mkJumps(), 32_000)
	conds := New(DefaultConfig()).Run(mkRandomCond(), 32_000)
	// Both streams redirect heavily; jumps only via BTB misses (and
	// only until the BTB warms), conds via execute-stage mispredicts.
	if jumps.Redirects == 0 {
		t.Fatal("jump stream produced no redirects")
	}
	if conds.Redirects == 0 {
		t.Fatal("cond stream produced no redirects")
	}
	if jumps.IPC <= conds.IPC {
		t.Errorf("decode-redirect stream IPC %.3f should exceed execute-redirect stream %.3f",
			jumps.IPC, conds.IPC)
	}
}

func TestStoreTrafficCounted(t *testing.T) {
	var instrs []trace.Instruction
	for i := 0; i < 1000; i++ {
		instrs = append(instrs, trace.Instruction{
			PC: 0x1000 + uint64(i%8)*4, Size: 4, IsStore: true,
			DataAddr: 0x9000_0000 + uint64(i)*64,
		})
	}
	m := New(DefaultConfig())
	r := m.Run(&trace.SliceSource{Instrs: instrs}, 1000)
	if r.L1D.Accesses < 900 {
		t.Errorf("stores not reaching L1D: %d accesses", r.L1D.Accesses)
	}
}
