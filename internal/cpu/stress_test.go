package cpu

// Stress tests: randomized configurations and hostile instruction
// streams must never panic or hang, whatever metrics they produce.

import (
	"math/rand"
	"testing"

	"entangling/internal/prefetch"
	"entangling/internal/trace"
	"entangling/internal/workload"
)

func TestRandomConfigurationsDoNotPanic(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	rng := rand.New(rand.NewSource(7))
	names := prefetch.Names()
	for i := 0; i < 20; i++ {
		cfg := DefaultConfig()
		cfg.FetchWidth = 1 + rng.Intn(8)
		cfg.RetireWidth = 1 + rng.Intn(8)
		cfg.ROBSize = 8 << rng.Intn(6)
		cfg.FTQDepth = 1 + rng.Intn(48)
		cfg.L1I.Ways = 1 << rng.Intn(4)
		cfg.L1I.MSHRs = 1 + rng.Intn(16)
		cfg.L1I.PQSize = 1 + rng.Intn(64)
		cfg.L2.ServiceInterval = uint64(rng.Intn(4))
		cfg.DRAM.Latency = 50 + uint64(rng.Intn(400))
		cfg.PhysicalAddresses = rng.Intn(2) == 0
		name := names[rng.Intn(len(names))]
		cfg.Prefetcher = func(is prefetch.Issuer) prefetch.Prefetcher {
			pf, err := prefetch.New(name, is)
			if err != nil {
				t.Fatal(err)
			}
			return pf
		}
		p := workload.Preset(workload.Srv)
		p.Seed = uint64(i + 1)
		prog, err := workload.BuildProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		m := New(cfg)
		r := m.Run(workload.NewWalker(prog), 60_000)
		if r.Instructions != 60_000 {
			t.Fatalf("config %d (%s): ran %d instructions", i, name, r.Instructions)
		}
		if r.Cycles == 0 {
			t.Fatalf("config %d (%s): zero cycles", i, name)
		}
	}
}

func TestHostileStreamsDoNotPanic(t *testing.T) {
	// Pathological streams: same-line jumps, self-loops, address wrap
	// neighborhood, dense calls without returns, returns without calls.
	streams := map[string][]trace.Instruction{
		"self-loop": {
			{PC: 0x1000, Size: 4, Branch: trace.DirectJump, Taken: true, Target: 0x1000},
		},
		"call-storm": {
			{PC: 0x1000, Size: 4, Branch: trace.DirectCall, Taken: true, Target: 0x1000},
		},
		"return-storm": {
			{PC: 0x1000, Size: 4, Branch: trace.Return, Taken: true, Target: 0x1000},
		},
		"high-addresses": {
			{PC: ^uint64(0) - 256, Size: 4},
			{PC: ^uint64(0) - 252, Size: 4, Branch: trace.DirectJump, Taken: true, Target: ^uint64(0) - 256},
		},
	}
	for name, pattern := range streams {
		var instrs []trace.Instruction
		for len(instrs) < 20_000 {
			instrs = append(instrs, pattern...)
		}
		cfg := DefaultConfig()
		cfg.Prefetcher = func(is prefetch.Issuer) prefetch.Prefetcher {
			pf, err := prefetch.New("entangling-4k", is)
			if err != nil {
				t.Fatal(err)
			}
			return pf
		}
		m := New(cfg)
		r := m.Run(&trace.SliceSource{Instrs: instrs}, 20_000)
		if r.Instructions != 20_000 {
			t.Errorf("%s: ran %d instructions", name, r.Instructions)
		}
	}
}

func TestAllRegisteredPrefetchersRun(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	p := workload.Preset(workload.Int)
	p.Seed = 2
	prog, err := workload.BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range prefetch.Names() {
		name := name
		cfg := DefaultConfig()
		cfg.Prefetcher = func(is prefetch.Issuer) prefetch.Prefetcher {
			pf, err := prefetch.New(name, is)
			if err != nil {
				t.Fatal(err)
			}
			return pf
		}
		m := New(cfg)
		r := m.Run(workload.NewWalker(prog), 50_000)
		if r.Instructions != 50_000 {
			t.Errorf("%s: incomplete run", name)
		}
		if r.PrefetcherName != name {
			t.Errorf("prefetcher name %q, want %q", r.PrefetcherName, name)
		}
	}
}
