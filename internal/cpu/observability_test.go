package cpu

import (
	"testing"

	"entangling/internal/prefetch"
	"entangling/internal/workload"
)

// TestLifecycleMatchesCacheCounters cross-checks the lifecycle tracker
// against the L1I's own prefetch counters over a full run: both observe
// the same event stream, so the overlapping counts must agree exactly.
func TestLifecycleMatchesCacheCounters(t *testing.T) {
	r := run(t, workload.Srv, 7, 300_000, func(c *Config) {
		c.Prefetcher = func(i prefetch.Issuer) prefetch.Prefetcher { return prefetch.NewDJolt(i) }
	})
	lc := r.Lifecycle
	if lc.Timely != r.L1I.TimelyPrefetchHits {
		t.Errorf("lifecycle timely %d != L1I %d", lc.Timely, r.L1I.TimelyPrefetchHits)
	}
	if lc.Late != r.L1I.LatePrefetches {
		t.Errorf("lifecycle late %d != L1I %d", lc.Late, r.L1I.LatePrefetches)
	}
	if lc.EvictedUnused != r.L1I.WrongPrefetches {
		t.Errorf("lifecycle evicted-unused %d != L1I wrong %d", lc.EvictedUnused, r.L1I.WrongPrefetches)
	}
	if lc.Timely == 0 {
		t.Error("srv + djolt produced no timely prefetches")
	}
	if lc.Late > 0 && lc.LateCyclesSaved == 0 {
		t.Error("late prefetches recorded but no cycles saved")
	}
	if lc.EarlyEvicted > lc.EvictedUnused {
		t.Errorf("early-evicted %d exceeds evicted-unused %d in a full run",
			lc.EarlyEvicted, lc.EvictedUnused)
	}
}

// TestStallAttributionComplete asserts the defining invariant of the
// breakdown: Total() is the sum of the buckets (by construction), and a
// workload with real misses attributes nonzero cycles to the front-end.
func TestStallAttributionComplete(t *testing.T) {
	r := run(t, workload.Srv, 8, 300_000, nil)
	st := r.Stalls
	sum := st.L1IMiss + st.BTBMiss + st.Mispredict + st.FTQFull + st.ROBFull
	if sum != st.Total() {
		t.Fatalf("bucket sum %d != Total %d", sum, st.Total())
	}
	if st.Total() == 0 {
		t.Fatal("srv run attributed zero stall cycles")
	}
	if st.L1IMiss == 0 {
		t.Error("srv baseline (high MPKI) attributed no L1I-miss stalls")
	}
	if st.Mispredict == 0 {
		t.Error("no mispredict stalls despite imperfect predictor")
	}
}

// TestStallAttributionRespondsToIdealL1I: removing all L1I misses must
// zero the L1I-miss bucket without touching the invariant.
func TestStallAttributionRespondsToIdealL1I(t *testing.T) {
	base := run(t, workload.Srv, 9, 200_000, nil)
	ideal := run(t, workload.Srv, 9, 200_000, func(c *Config) { c.L1I.Ideal = true })
	if ideal.Stalls.L1IMiss != 0 {
		t.Errorf("ideal L1I still attributed %d L1I-miss stall cycles", ideal.Stalls.L1IMiss)
	}
	if base.Stalls.L1IMiss == 0 {
		t.Error("baseline attributed no L1I-miss stalls")
	}
}

// TestFeedbackReachesPrefetcher runs DJOLT (which implements the
// feedback sink) and asserts the simulator actually delivered feedback.
func TestFeedbackReachesPrefetcher(t *testing.T) {
	p := workload.Preset(workload.Srv)
	p.Name = "srv"
	p.Seed = 10
	prog, err := workload.BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	var dj *prefetch.DJolt
	cfg.Prefetcher = func(i prefetch.Issuer) prefetch.Prefetcher {
		dj = prefetch.NewDJolt(i)
		return dj
	}
	m := New(cfg)
	r := m.Run(workload.NewWalker(prog), 300_000)
	if r.Lifecycle.Late > 0 && dj.FeedbackLate != r.Lifecycle.Late {
		t.Errorf("djolt saw %d late feedbacks, lifecycle counted %d", dj.FeedbackLate, r.Lifecycle.Late)
	}
	if r.Lifecycle.EvictedUnused > 0 && dj.FeedbackUseless != r.Lifecycle.EvictedUnused {
		t.Errorf("djolt saw %d useless feedbacks, lifecycle counted %d", dj.FeedbackUseless, r.Lifecycle.EvictedUnused)
	}
	if dj.FeedbackLate+dj.FeedbackUseless == 0 {
		t.Error("no feedback of either kind delivered over a srv run")
	}
}

// TestLifecycleWindowSubtraction: warmup must be excluded from the
// measured window's lifecycle and stall counters.
func TestLifecycleWindowSubtraction(t *testing.T) {
	p := workload.Preset(workload.Srv)
	p.Name = "srv"
	p.Seed = 11
	prog, err := workload.BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Prefetcher = func(i prefetch.Issuer) prefetch.Prefetcher { return prefetch.NewDJolt(i) }
	m := New(cfg)
	full := m.Run(workload.NewWalker(prog), 400_000)

	m2 := New(cfg)
	second := m2.RunWindows(workload.NewWalker(prog), 200_000, 200_000)

	// The second window's counters must be a strict sub-range: no more
	// than the full run's, and less than a full re-count would give.
	if second.Lifecycle.Timely > full.Lifecycle.Timely {
		t.Errorf("window timely %d exceeds full-run %d", second.Lifecycle.Timely, full.Lifecycle.Timely)
	}
	if second.Stalls.Total() > full.Stalls.Total() {
		t.Errorf("window stalls %d exceed full-run %d", second.Stalls.Total(), full.Stalls.Total())
	}
	if second.Stalls.Total() == 0 {
		t.Error("measured window attributed zero stalls")
	}
}
