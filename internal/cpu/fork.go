package cpu

import (
	"fmt"

	"entangling/internal/cache"
	"entangling/internal/prefetch"
)

// This file implements warmup-snapshot forking: a deep copy of a warm
// Machine that resumes consuming the shared trace mid-stream. The fork
// covers every piece of mutable state — cache arrays and side-arrays,
// MSHRs and the prefetch queue, branch-predictor tables and the BTB,
// the prefetcher's structures (via prefetch.Forkable), the lifecycle
// tracker, the FTQ/ROB/retire-width rings, block-formation registers
// and the translation state — and rewires the level chain
// (dram -> llc -> l2 -> {l1d, l1i}) and the L1I listener tee onto the
// copies, so the fork and the original (and sibling forks) share no
// mutable storage and replay cycle-identically to a machine that ran
// the warmup itself. The harness's fingerprint gates hold forking to
// exactly that claim.

// Fork deep-copies a warm machine. The fork is born warm: it can be
// measured with MeasureCtx (against a source advanced to Consumed())
// or forked again — a stored warmup snapshot forks once per reuse and
// is itself never run.
//
// Fork fails with ErrNotWarmed on an idle machine, ErrMachineUsed on a
// consumed one, and ErrNotForkable when the configuration pins state a
// deep copy cannot carry (an ExtraL1IListener or BranchHook closure,
// or a prefetcher that does not implement prefetch.Forkable). Callers
// treat ErrNotForkable as "stay on the sequential path".
func (m *Machine) Fork() (*Machine, error) {
	switch m.state {
	case stateIdle:
		return nil, ErrNotWarmed
	case stateDone:
		return nil, ErrMachineUsed
	}
	if m.cfg.ExtraL1IListener != nil {
		return nil, fmt.Errorf("%w: ExtraL1IListener is set", ErrNotForkable)
	}
	if m.cfg.BranchHook != nil {
		return nil, fmt.Errorf("%w: BranchHook is set", ErrNotForkable)
	}
	fpf, ok := m.pf.(prefetch.Forkable)
	if !ok {
		return nil, fmt.Errorf("%w: prefetcher %q is not prefetch.Forkable",
			ErrNotForkable, m.pf.Name())
	}

	f := &Machine{}
	*f = *m // scalars: cfg, clocks, cursors, block registers, stalls, trans

	// Rebuild the memory hierarchy bottom-up on deep copies.
	f.dram = m.dram.Fork()
	f.llc = m.llc.Fork(f.dram)
	f.l2 = m.l2.Fork(f.llc)
	f.l1d = m.l1d.Fork(f.l2)
	f.icache = m.icache.Fork(f.l2, nil)
	f.pred = m.pred.Fork()

	// The forked prefetcher issues into the forked L1I; the forked
	// tracker feeds lifecycle feedback back to the forked prefetcher
	// (mirroring New's wiring exactly).
	f.pf = fpf.Fork(f.icache)
	sink, _ := f.pf.(cache.FeedbackSink)
	f.tracker = m.tracker.Fork(sink)
	f.icache.SetListener(teeListener{a: listenerAdapter{f.pf}, b: f.tracker})

	f.ftqRing = append([]uint64(nil), m.ftqRing...)
	f.robRing = append([]uint64(nil), m.robRing...)
	f.widthRing = append([]uint64(nil), m.widthRing...)

	f.state = stateWarm
	return f, nil
}
