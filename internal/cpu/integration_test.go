package cpu

// Integration tests asserting the qualitative results the paper's
// evaluation hinges on: the relative ordering of prefetchers, the
// scaling across Entangling budgets, and the ablation ordering of
// Figure 11. These run one srv workload at windows long enough for the
// orderings to be stable; the benchmark suite exercises the full
// suites.

import (
	"testing"

	"entangling/internal/core"
	"entangling/internal/prefetch"
	"entangling/internal/workload"
)

var srvCache map[string]Results

func srvResults(t *testing.T) map[string]Results {
	t.Helper()
	if testing.Short() {
		t.Skip("integration suite needs long windows")
	}
	if srvCache != nil {
		return srvCache
	}
	p := workload.Preset(workload.Srv)
	p.Seed = 1
	p.Name = "srv-it"
	prog, err := workload.BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	const warm, meas = 3_000_000, 1_500_000
	names := []string{
		"no", "nextline", "sn4l", "mana-2k", "mana-4k", "mana-8k",
		"rdip", "djolt", "fnl+mma",
		"entangling-2k", "entangling-4k", "entangling-8k", "epi",
		"entangling-4k-BB", "entangling-4k-BBEnt", "entangling-4k-BBEntBB", "entangling-4k-Ent",
		"ideal",
	}
	srvCache = make(map[string]Results, len(names))
	for _, name := range names {
		cfg := DefaultConfig()
		switch name {
		case "no":
		case "ideal":
			cfg.L1I.Ideal = true
		default:
			nm := name
			cfg.Prefetcher = func(is prefetch.Issuer) prefetch.Prefetcher {
				pf, err := prefetch.New(nm, is)
				if err != nil {
					t.Fatal(err)
				}
				return pf
			}
		}
		m := New(cfg)
		srvCache[name] = m.RunWindows(workload.NewWalker(prog), warm, meas)
	}
	return srvCache
}

func speedup(rs map[string]Results, name string) float64 {
	return rs[name].IPC / rs["no"].IPC
}

func TestIdealBoundsEverything(t *testing.T) {
	rs := srvResults(t)
	for name, r := range rs {
		if name == "ideal" {
			continue
		}
		if r.IPC > rs["ideal"].IPC {
			t.Errorf("%s IPC %.3f exceeds ideal %.3f", name, r.IPC, rs["ideal"].IPC)
		}
	}
}

func TestEveryPrefetcherBeatsBaseline(t *testing.T) {
	// §IV-C2: "the Entangling prefetcher never gets performance
	// degradation with respect to not using any prefetcher"; on the
	// high-MPKI srv workload every evaluated prefetcher should help.
	rs := srvResults(t)
	for _, name := range []string{"nextline", "sn4l", "mana-2k", "mana-4k",
		"rdip", "djolt", "fnl+mma", "entangling-2k", "entangling-4k", "entangling-8k", "epi"} {
		if sp := speedup(rs, name); sp < 1.0 {
			t.Errorf("%s slows the machine down: %.3f", name, sp)
		}
	}
}

func TestEntanglingBeatsDistanceBasedPrefetchers(t *testing.T) {
	// The paper's headline ordering: timeliness-driven entangling
	// outperforms next-line, the BTB-directed MANA at every budget, and
	// RDIP (§IV-C, §V).
	rs := srvResults(t)
	e4 := speedup(rs, "entangling-4k")
	for _, rival := range []string{"nextline", "sn4l", "mana-2k", "mana-4k", "mana-8k", "rdip", "fnl+mma"} {
		if e4 <= speedup(rs, rival) {
			t.Errorf("entangling-4k (%.3f) does not beat %s (%.3f)", e4, rival, speedup(rs, rival))
		}
	}
	// The paper's cost-effectiveness claim: the low-budget Entangling
	// outperforms the high-budget MANA.
	if speedup(rs, "entangling-2k") <= speedup(rs, "mana-8k") {
		t.Errorf("entangling-2k (%.3f) does not beat mana-8k (%.3f)",
			speedup(rs, "entangling-2k"), speedup(rs, "mana-8k"))
	}
}

func TestEntanglingBudgetScaling(t *testing.T) {
	rs := srvResults(t)
	e2, e4, e8 := speedup(rs, "entangling-2k"), speedup(rs, "entangling-4k"), speedup(rs, "entangling-8k")
	epi := speedup(rs, "epi")
	if e2 > e4*1.01 {
		t.Errorf("2K (%.3f) should not beat 4K (%.3f)", e2, e4)
	}
	if e4 > e8*1.01 {
		t.Errorf("4K (%.3f) should not beat 8K (%.3f)", e4, e8)
	}
	if e8 > epi*1.02 {
		t.Errorf("8K (%.3f) should not beat the unconstrained EPI (%.3f)", e8, epi)
	}
}

func TestEntanglingMissRatioLowest(t *testing.T) {
	// Figure 8: "The Entangling prefetcher significantly outperforms
	// its competitors across all benchmarks, reducing drastically the
	// miss rate."
	rs := srvResults(t)
	ratio := func(name string) float64 {
		st := rs[name].L1I
		return st.MissRatio()
	}
	e4 := ratio("entangling-4k")
	for _, rival := range []string{"nextline", "sn4l", "mana-4k", "rdip", "djolt", "fnl+mma"} {
		if e4 >= ratio(rival) {
			t.Errorf("entangling-4k miss ratio %.3f not below %s (%.3f)",
				e4, rival, ratio(rival))
		}
	}
}

func TestAblationOrdering(t *testing.T) {
	// Figure 11: BB alone and raw-line Ent trail; adding entangled
	// destinations (BBEnt) helps; prefetching destination blocks
	// (BBEntBB) helps more; merging (the full design) does not hurt.
	rs := srvResults(t)
	bb := speedup(rs, "entangling-4k-BB")
	ent := speedup(rs, "entangling-4k-Ent")
	bbent := speedup(rs, "entangling-4k-BBEnt")
	bbentbb := speedup(rs, "entangling-4k-BBEntBB")
	full := speedup(rs, "entangling-4k")

	if bbent <= bb {
		t.Errorf("BBEnt (%.3f) should beat BB (%.3f)", bbent, bb)
	}
	if bbentbb <= bbent {
		t.Errorf("BBEntBB (%.3f) should beat BBEnt (%.3f)", bbentbb, bbent)
	}
	if ent >= bbentbb {
		t.Errorf("raw-line Ent (%.3f) should trail BBEntBB (%.3f)", ent, bbentbb)
	}
	if full < bbentbb*0.98 {
		t.Errorf("merging (%.3f) should not hurt BBEntBB (%.3f)", full, bbentbb)
	}
}

func TestEntanglingCoverageHigh(t *testing.T) {
	rs := srvResults(t)
	base := rs["no"].L1I.Misses
	cov := 1 - float64(rs["entangling-4k"].L1I.Misses)/float64(base)
	if cov < 0.5 {
		t.Errorf("entangling-4k srv coverage %.3f below 0.5", cov)
	}
	nl := 1 - float64(rs["nextline"].L1I.Misses)/float64(base)
	if cov <= nl {
		t.Errorf("entangling coverage %.3f not above nextline %.3f", cov, nl)
	}
}

func TestDeterministicAcrossEquivalentMachines(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	p := workload.Preset(workload.Int)
	p.Seed = 9
	prog, _ := workload.BuildProgram(p)
	mk := func() Results {
		cfg := DefaultConfig()
		cfg.Prefetcher = func(is prefetch.Issuer) prefetch.Prefetcher {
			return core.New(core.Config4K(core.Virtual), is)
		}
		return New(cfg).RunWindows(workload.NewWalker(prog), 400_000, 300_000)
	}
	if a, b := mk(), mk(); a != b {
		t.Fatalf("entangling run not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestPhysicalTrainingCostsCoverage(t *testing.T) {
	// §IV-E: physical training loses some coverage because virtual page
	// contiguity breaks; it must still clearly beat the baseline.
	if testing.Short() {
		t.Skip("long")
	}
	p := workload.Preset(workload.Srv)
	p.Seed = 2
	prog, _ := workload.BuildProgram(p)
	run := func(phys bool, pf string) Results {
		cfg := DefaultConfig()
		cfg.PhysicalAddresses = phys
		cfg.TranslatorSalt = 7
		if pf != "" {
			cfg.Prefetcher = func(is prefetch.Issuer) prefetch.Prefetcher {
				r, err := prefetch.New(pf, is)
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
		}
		return New(cfg).RunWindows(workload.NewWalker(prog), 2_000_000, 1_000_000)
	}
	basePhys := run(true, "")
	entPhys := run(true, "entangling-4k-phys")
	if entPhys.IPC <= basePhys.IPC {
		t.Errorf("physical entangling (%.3f) not above physical baseline (%.3f)",
			entPhys.IPC, basePhys.IPC)
	}
	baseVirt := run(false, "")
	entVirt := run(false, "entangling-4k")
	virtGain := entVirt.IPC / baseVirt.IPC
	physGain := entPhys.IPC / basePhys.IPC
	if physGain > virtGain*1.05 {
		t.Errorf("physical training (%.3f) should not beat virtual (%.3f)", physGain, virtGain)
	}
}
