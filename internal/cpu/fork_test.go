package cpu

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"entangling/internal/cache"
	_ "entangling/internal/core" // register entangling prefetchers
	"entangling/internal/prefetch"
	"entangling/internal/workload"
)

// forkTrace materializes a shared srv trace, the setting forking
// exists for: every machine under test reads the same immutable
// stream, sequentially or mid-stream via SourceAt.
func forkTrace(t *testing.T, seed, n uint64) *workload.Trace {
	t.Helper()
	p := workload.Preset(workload.Srv)
	p.Name = "srv"
	p.Seed = seed
	tr, err := workload.Materialize(workload.Spec{Name: "srv", Params: p}, n)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func pfConfig(t *testing.T, name string) Config {
	t.Helper()
	cfg := DefaultConfig()
	if name != "no" {
		cfg.Prefetcher = func(i prefetch.Issuer) prefetch.Prefetcher {
			pf, err := prefetch.New(name, i)
			if err != nil {
				t.Fatalf("prefetch.New(%q): %v", name, err)
			}
			return pf
		}
	}
	return cfg
}

// TestForkEquivalence is the core claim of warmup-snapshot forking: a
// machine forked at the warmup boundary and measured over the
// remaining stream produces results identical — field for field,
// including the windowed lead quantiles — to a machine that ran
// warmup+measure sequentially. Verified for every shipped prefetcher
// family, for the fork's original, and for a fork of a fork (the
// stored-snapshot reuse shape).
func TestForkEquivalence(t *testing.T) {
	const warmup, measure = 150_000, 100_000
	tr := forkTrace(t, 21, warmup+measure)
	ctx := context.Background()
	for _, name := range []string{
		"no", "nextline", "sn4l", "mana-4k", "rdip", "djolt", "fnl+mma",
		"entangling-4k", "epi",
	} {
		t.Run(name, func(t *testing.T) {
			seq := New(pfConfig(t, name))
			want, err := seq.RunWindowsCtx(ctx, tr.Source(), warmup, measure)
			if err != nil {
				t.Fatal(err)
			}

			warm := New(pfConfig(t, name))
			src := tr.Source()
			if err := warm.WarmupCtx(ctx, src, warmup); err != nil {
				t.Fatal(err)
			}
			f1, err := warm.Fork()
			if err != nil {
				t.Fatal(err)
			}
			// Fork of a fork: a stored snapshot is itself a fork and is
			// forked once per reuse.
			f2, err := f1.Fork()
			if err != nil {
				t.Fatal(err)
			}
			pos := warm.Consumed() // trace position at the fork point

			// The original machine continues its own source.
			got, err := warm.MeasureCtx(ctx, src, measure)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("warmed original diverged from sequential run:\n got %+v\nwant %+v", got, want)
			}
			// The forks resume fresh sources at the stored position.
			for i, f := range []*Machine{f1, f2} {
				got, err := f.MeasureCtx(ctx, tr.SourceAt(pos), measure)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("fork %d diverged from sequential run:\n got %+v\nwant %+v", i+1, got, want)
				}
			}
		})
	}
}

// TestMachineSingleUse holds the "a Machine must not be reused across
// runs" contract: every second use of a consumed machine fails loudly.
func TestMachineSingleUse(t *testing.T) {
	tr := forkTrace(t, 22, 60_000)

	t.Run("second Run panics", func(t *testing.T) {
		m := New(DefaultConfig())
		m.Run(tr.Source(), 30_000)
		defer func() {
			if r := recover(); !errors.Is(r.(error), ErrMachineUsed) {
				t.Errorf("panic %v, want ErrMachineUsed", r)
			}
		}()
		m.Run(tr.Source(), 30_000)
		t.Fatal("second Run did not panic")
	})

	t.Run("second RunWindows panics", func(t *testing.T) {
		m := New(DefaultConfig())
		m.RunWindows(tr.Source(), 20_000, 20_000)
		defer func() {
			if r := recover(); !errors.Is(r.(error), ErrMachineUsed) {
				t.Errorf("panic %v, want ErrMachineUsed", r)
			}
		}()
		m.RunWindows(tr.Source(), 20_000, 20_000)
		t.Fatal("second RunWindows did not panic")
	})

	t.Run("ctx entry points return typed errors", func(t *testing.T) {
		ctx := context.Background()
		m := New(DefaultConfig())
		if _, err := m.MeasureCtx(ctx, tr.Source(), 10_000); !errors.Is(err, ErrNotWarmed) {
			t.Errorf("MeasureCtx on idle machine: %v, want ErrNotWarmed", err)
		}
		if _, err := m.RunWindowsCtx(ctx, tr.Source(), 20_000, 20_000); err != nil {
			t.Fatal(err)
		}
		if err := m.WarmupCtx(ctx, tr.Source(), 10_000); !errors.Is(err, ErrMachineUsed) {
			t.Errorf("WarmupCtx on consumed machine: %v, want ErrMachineUsed", err)
		}
		if _, err := m.MeasureCtx(ctx, tr.Source(), 10_000); !errors.Is(err, ErrMachineUsed) {
			t.Errorf("MeasureCtx on consumed machine: %v, want ErrMachineUsed", err)
		}
	})
}

// TestForkStateErrors covers Fork misuse: forking before any warmup,
// and forking a consumed machine.
func TestForkStateErrors(t *testing.T) {
	tr := forkTrace(t, 23, 40_000)
	m := New(DefaultConfig())
	if _, err := m.Fork(); !errors.Is(err, ErrNotWarmed) {
		t.Errorf("Fork on idle machine: %v, want ErrNotWarmed", err)
	}
	if _, err := m.RunWindowsCtx(context.Background(), tr.Source(), 20_000, 20_000); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fork(); !errors.Is(err, ErrMachineUsed) {
		t.Errorf("Fork on consumed machine: %v, want ErrMachineUsed", err)
	}
}

// noForkPF wraps a prefetcher without promoting Fork (the embedded
// interface carries only the Prefetcher methods), modeling an external
// prefetcher that does not implement prefetch.Forkable.
type noForkPF struct{ prefetch.Prefetcher }

// TestForkNotForkable: configurations that pin un-copyable state — an
// oracle listener, a branch hook, a non-Forkable prefetcher — must
// refuse to fork with ErrNotForkable (the harness's cue to keep the
// cell on the sequential path), not fork a shallow lie.
func TestForkNotForkable(t *testing.T) {
	tr := forkTrace(t, 24, 40_000)
	ctx := context.Background()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"branch hook", func(c *Config) { c.BranchHook = func(prefetch.BranchEvent) {} }},
		{"extra listener", func(c *Config) { c.ExtraL1IListener = nopListener{} }},
		{"non-forkable prefetcher", func(c *Config) {
			c.Prefetcher = func(i prefetch.Issuer) prefetch.Prefetcher {
				return noForkPF{prefetch.NewNextLine(i)}
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			m := New(cfg)
			if err := m.WarmupCtx(ctx, tr.Source(), 20_000); err != nil {
				t.Fatal(err)
			}
			if _, err := m.Fork(); !errors.Is(err, ErrNotForkable) {
				t.Errorf("Fork: %v, want ErrNotForkable", err)
			}
			// The machine itself is unharmed: the sequential path works.
			if _, err := m.MeasureCtx(ctx, nil, 0); err != nil {
				t.Errorf("MeasureCtx after refused fork: %v", err)
			}
		})
	}
}

// TestForkUnderCancellation: a canceled warmup poisons the machine (it
// must never be mistaken for a completed warmup and forked), and a
// canceled forked measurement reports the context error without
// touching its siblings.
func TestForkUnderCancellation(t *testing.T) {
	tr := forkTrace(t, 25, 300_000)

	t.Run("canceled warmup cannot fork", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		m := New(DefaultConfig())
		if err := m.WarmupCtx(ctx, tr.Source(), 200_000); !errors.Is(err, context.Canceled) {
			t.Fatalf("WarmupCtx under canceled ctx: %v", err)
		}
		if _, err := m.Fork(); !errors.Is(err, ErrMachineUsed) {
			t.Errorf("Fork after canceled warmup: %v, want ErrMachineUsed", err)
		}
	})

	t.Run("canceled fork measurement leaves sibling intact", func(t *testing.T) {
		m := New(DefaultConfig())
		src := tr.Source()
		if err := m.WarmupCtx(context.Background(), src, 150_000); err != nil {
			t.Fatal(err)
		}
		f1, err := m.Fork()
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := f1.MeasureCtx(ctx, tr.SourceAt(m.Consumed()), 100_000); !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled MeasureCtx: %v", err)
		}
		// The original still measures normally.
		want, err := New(DefaultConfig()).RunWindowsCtx(context.Background(), tr.Source(), 150_000, 100_000)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.MeasureCtx(context.Background(), src, 100_000)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Error("sibling of canceled fork diverged from sequential run")
		}
	})
}

// nopListener is an inert cache listener for the not-forkable cases.
type nopListener struct{}

func (nopListener) OnAccess(cache.AccessEvent) {}
func (nopListener) OnFill(cache.FillEvent)     {}
func (nopListener) OnEvict(cache.EvictEvent)   {}
