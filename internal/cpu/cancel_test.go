package cpu

import (
	"context"
	"reflect"
	"testing"
	"time"

	"entangling/internal/trace"
)

// endlessSource is an endless straight-line instruction stream: without
// external cancellation a run over it never terminates, which makes it
// the sharpest probe of the hot loop's cancellation polling.
type endlessSource struct {
	pc uint64
}

func (s *endlessSource) Next(in *trace.Instruction) bool {
	*in = trace.Instruction{PC: 0x400000 + (s.pc % 4096), Size: 4}
	s.pc += 4
	return true
}

func TestRunWindowsCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := New(DefaultConfig())
	_, err := m.RunWindowsCtx(ctx, &endlessSource{}, 1<<20, 1<<20)
	if err == nil {
		t.Fatal("pre-canceled run returned no error")
	}
	if ctx.Err() == nil || err.Error() != ctx.Err().Error() {
		t.Errorf("err = %v, want %v", err, ctx.Err())
	}
}

// TestRunWindowsCtxCancelsInfiniteRun: cancellation is the ONLY way
// out of this run — if the hot loop's periodic poll were broken the
// test would hang (bounded here by a generous watchdog).
func TestRunWindowsCtxCancelsInfiniteRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m := New(DefaultConfig())

	done := make(chan error, 1)
	go func() {
		_, err := m.RunWindowsCtx(ctx, &endlessSource{}, 1<<62, 1)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the loop get going
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled infinite run returned no error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation did not stop the simulation loop")
	}
}

// TestRunWindowsCtxBackgroundMatchesRunWindows: under an uncancellable
// context the ctx path must be bit-identical to the plain one — the
// cancellation poll may not perturb simulation state.
func TestRunWindowsCtxBackgroundMatchesRunWindows(t *testing.T) {
	const warmup, measure = 50_000, 30_000

	src1 := &endlessSource{}
	plain := New(DefaultConfig()).RunWindows(src1, warmup, measure)

	src2 := &endlessSource{}
	viaCtx, err := New(DefaultConfig()).RunWindowsCtx(context.Background(), src2, warmup, measure)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, viaCtx) {
		t.Errorf("ctx run diverged from plain run:\nplain %+v\nctx   %+v", plain, viaCtx)
	}
}

// TestRunWindowsCtxPartialConsumption: a run canceled mid-warmup must
// not have consumed the whole stream — the loop really does stop at a
// poll boundary instead of finishing the window first.
func TestRunWindowsCtxPartialConsumption(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	src := &endlessSource{}
	m := New(DefaultConfig())

	done := make(chan struct{})
	go func() {
		m.RunWindowsCtx(ctx, src, 1<<62, 1)
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation did not stop the loop")
	}
	consumed := src.pc / 4
	if consumed == 0 {
		t.Fatal("loop never ran")
	}
	// The poll interval bounds overshoot: after cancel the loop may
	// finish at most one interval's worth of instructions plus the
	// in-flight window, nowhere near the 2^62 requested.
	if consumed >= 1<<40 {
		t.Errorf("loop consumed %d instructions after cancellation", consumed)
	}
}
