// Package loadgen replays mixed job-submission workloads against a
// running node and reduces what happened into a versioned, machine-
// checkable report: admission-to-result latency percentiles, cache
// hit-rate, and an error taxonomy keyed by the server's machine-
// readable rejection reasons. It is the proving ground for the
// multi-tenant server — CI replays a pinned plan against a freshly
// booted node and fails the build when p99 latency or hit-rate
// regresses past checked-in thresholds.
//
// Plans are deterministic: every submission's shape is a pure function
// of (seed, op index), independent of scheduling, so two replays of
// the same plan against equivalent nodes submit byte-identical work.
// The timing they observe of course differs — that is the measurement.
package loadgen

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// PlanSchemaVersion identifies the plan file layout.
const PlanSchemaVersion = 1

// The submission mix kinds a plan weights.
const (
	// KindDedupHeavy resubmits jobs from a small fixed pool, so most
	// submissions dedupe onto live or remembered jobs.
	KindDedupHeavy = "dedup-heavy"
	// KindCacheCold submits a unique sweep every time (distinct warmup
	// window → distinct cell fingerprints), defeating every cache tier.
	KindCacheCold = "cache-cold"
	// KindTraceUpload ingests small synthetic ENTRACE1 payloads drawn
	// from a fixed seed pool (so some uploads dedupe server-side).
	KindTraceUpload = "trace-upload"
	// KindFaultPlan submits jobs carrying a deterministic fault plan
	// (rejected 403 for tenants without the fault grant — that
	// rejection is itself a measured outcome).
	KindFaultPlan = "fault-plan"
	// KindCancelMid submits a job and cancels it immediately,
	// exercising the cancel/ownership path under load.
	KindCancelMid = "cancel-mid-job"
	// KindApproxQuery submits the dedup-heavy shape pool in
	// mode=approximate, so the replay measures the predicted-answer
	// latency lane against the exact lanes and the fallback rate of a
	// node's model. Requires a node running with -approximate; against
	// an exact-only node every op records a bad_request outcome.
	KindApproxQuery = "approx-query"
)

// knownKinds guards plan validation.
var knownKinds = map[string]bool{
	KindDedupHeavy:  true,
	KindCacheCold:   true,
	KindTraceUpload: true,
	KindFaultPlan:   true,
	KindCancelMid:   true,
	KindApproxQuery: true,
}

// MixEntry weights one submission kind in the replay.
type MixEntry struct {
	Kind   string `json:"kind"`
	Weight int    `json:"weight"`
}

// TenantLane is one tenant identity submitting load. An empty Tenants
// list replays anonymously (open server).
type TenantLane struct {
	Name string `json:"name"`
	Key  string `json:"key"`
}

// Plan is a replayable load description.
type Plan struct {
	SchemaVersion int    `json:"schema_version"`
	Seed          uint64 `json:"seed"`
	// Submissions is the total operation count across all lanes.
	Submissions int `json:"submissions"`
	// Concurrency is the number of parallel submitters per tenant lane
	// (default 4).
	Concurrency int `json:"concurrency,omitempty"`
	// Warmup and Measure are the base simulation windows; cache-cold
	// ops perturb Warmup to mint unique cells.
	Warmup  uint64 `json:"warmup"`
	Measure uint64 `json:"measure"`
	// Configurations and Workloads are the pools job shapes draw from;
	// names must exist in the server's registries.
	Configurations []string `json:"configurations"`
	Workloads      []string `json:"workloads"`
	// TraceInstructions sizes synthetic trace uploads (default 3000).
	TraceInstructions uint64 `json:"trace_instructions,omitempty"`
	// Tenants are the identities load is submitted as.
	Tenants []TenantLane `json:"tenants,omitempty"`
	// Mix weights the submission kinds.
	Mix []MixEntry `json:"mix"`
}

// DefaultPlan returns a small mixed plan against an open node.
func DefaultPlan() Plan {
	return Plan{
		SchemaVersion:  PlanSchemaVersion,
		Seed:           1,
		Submissions:    64,
		Concurrency:    4,
		Warmup:         5_000,
		Measure:        2_000,
		Configurations: []string{"no", "nextline", "entangling-4k"},
		Workloads:      []string{"crypto-00", "int-00", "srv-00"},
		Mix: []MixEntry{
			{Kind: KindDedupHeavy, Weight: 4},
			{Kind: KindCacheCold, Weight: 2},
			{Kind: KindApproxQuery, Weight: 2},
			{Kind: KindTraceUpload, Weight: 1},
			{Kind: KindCancelMid, Weight: 1},
		},
	}
}

// Validate reports the first structural problem with the plan.
func (p Plan) Validate() error {
	if p.SchemaVersion != PlanSchemaVersion {
		return fmt.Errorf("loadgen: plan schema %d, want %d", p.SchemaVersion, PlanSchemaVersion)
	}
	if p.Submissions <= 0 {
		return errors.New("loadgen: plan needs a positive submission count")
	}
	if p.Concurrency < 0 {
		return errors.New("loadgen: negative concurrency")
	}
	if p.Measure == 0 {
		return errors.New("loadgen: plan measure window must be positive")
	}
	if len(p.Configurations) == 0 || len(p.Workloads) == 0 {
		return errors.New("loadgen: plan needs configuration and workload pools")
	}
	if len(p.Mix) == 0 {
		return errors.New("loadgen: plan needs a non-empty mix")
	}
	total := 0
	seen := map[string]bool{}
	for _, m := range p.Mix {
		if !knownKinds[m.Kind] {
			return fmt.Errorf("loadgen: unknown mix kind %q", m.Kind)
		}
		if seen[m.Kind] {
			return fmt.Errorf("loadgen: duplicate mix kind %q", m.Kind)
		}
		seen[m.Kind] = true
		if m.Weight <= 0 {
			return fmt.Errorf("loadgen: mix kind %q needs a positive weight", m.Kind)
		}
		total += m.Weight
	}
	if total <= 0 {
		return errors.New("loadgen: mix weights sum to zero")
	}
	names := map[string]bool{}
	for _, t := range p.Tenants {
		if t.Name == "" || t.Key == "" {
			return errors.New("loadgen: tenant lanes need both name and key")
		}
		if names[t.Name] {
			return fmt.Errorf("loadgen: duplicate tenant lane %q", t.Name)
		}
		names[t.Name] = true
	}
	return nil
}

// withDefaults fills the optional knobs.
func (p Plan) withDefaults() Plan {
	if p.Concurrency == 0 {
		p.Concurrency = 4
	}
	if p.TraceInstructions == 0 {
		p.TraceInstructions = 3_000
	}
	return p
}

// ParsePlan strictly decodes one plan document: unknown fields and
// trailing data are rejected, then the plan is validated.
func ParsePlan(r io.Reader) (Plan, error) {
	var p Plan
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("loadgen: parsing plan: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return Plan{}, errors.New("loadgen: trailing data after plan document")
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// LoadPlanFile reads and parses a plan file.
func LoadPlanFile(path string) (Plan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, fmt.Errorf("loadgen: %w", err)
	}
	return ParsePlan(bytes.NewReader(b))
}
