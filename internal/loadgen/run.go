package loadgen

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"entangling/internal/client"
	"entangling/internal/faultinject"
	"entangling/internal/server"
	"entangling/internal/stats"
	"entangling/internal/trace"
	"entangling/internal/workload"
)

// Options assembles a replay.
type Options struct {
	// BaseURL locates the node under load.
	BaseURL string
	// Plan is the load description (validated before replay).
	Plan Plan
	// Retries is the SDK transport-retry budget (default 2 — a load
	// generator should surface flakiness, not paper over it).
	Retries int
	// Logf receives progress lines (default: discard).
	Logf func(format string, args ...any)
}

// lane is one submitting identity: a tenant (or the anonymous open-
// mode lane) with its own SDK client.
type lane struct {
	name string
	cl   *client.Client
}

// collector aggregates outcomes across all submitter goroutines.
type collector struct {
	mu             sync.Mutex
	ops            map[string]uint64
	states         map[string]uint64
	errs           map[string]uint64
	perTenant      map[string]*TenantOutcome
	deduped        uint64
	tracesUploaded uint64
	tracesDeduped  uint64
	cellsDone      uint64
	cellsSimulated uint64
	cellsPredicted uint64
	cellsFallback  uint64
	submitMS       []float64
	e2eMS          []float64
	approxSubmitMS []float64
	approxE2eMS    []float64
}

func (c *collector) op(tenant, kind string) {
	c.mu.Lock()
	c.ops[kind]++
	t := c.perTenant[tenant]
	if t == nil {
		t = &TenantOutcome{Errors: map[string]uint64{}}
		c.perTenant[tenant] = t
	}
	t.Ops++
	c.mu.Unlock()
}

func (c *collector) fail(tenant, reason string) {
	c.mu.Lock()
	c.errs[reason]++
	c.perTenant[tenant].Errors[reason]++
	c.mu.Unlock()
}

// classify maps an SDK error onto the taxonomy: the server's
// machine-readable reason when it answered, "transport" when the
// connection itself failed.
func classify(err error) string {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		if apiErr.Reason != "" {
			return apiErr.Reason
		}
		return fmt.Sprintf("http_%d", apiErr.Status)
	}
	return "transport"
}

// Run replays the plan against the node and reduces the outcomes into
// a Report. The error return covers setup problems (invalid plan,
// unreachable node); per-operation rejections are data, recorded in
// the report's taxonomy, never an error.
func Run(ctx context.Context, opt Options) (*Report, error) {
	if err := opt.Plan.Validate(); err != nil {
		return nil, err
	}
	plan := opt.Plan.withDefaults()
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	if opt.Retries <= 0 {
		opt.Retries = 2
	}

	lanes, err := buildLanes(opt, plan)
	if err != nil {
		return nil, err
	}
	if err := lanes[0].cl.Healthz(ctx); err != nil {
		return nil, fmt.Errorf("loadgen: node %s not healthy: %w", opt.BaseURL, err)
	}

	col := &collector{
		ops:       map[string]uint64{},
		states:    map[string]uint64{},
		errs:      map[string]uint64{},
		perTenant: map[string]*TenantOutcome{},
	}
	traces := newTracePool(plan)

	// Submitter pool: plan.Concurrency workers per lane, each draining
	// a shared deterministic op sequence. Which worker runs which op
	// is scheduling-dependent; what each op submits is not.
	type opItem struct {
		index int
		lane  *lane
	}
	work := make(chan opItem)
	var wg sync.WaitGroup
	start := time.Now()
	opt.Logf("loadgen: replaying %d submissions over %d lanes x %d workers",
		plan.Submissions, len(lanes), plan.Concurrency)
	for range lanes {
		for w := 0; w < plan.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for it := range work {
					runOp(ctx, plan, it.lane, it.index, col, traces)
				}
			}()
		}
	}
	for i := 0; i < plan.Submissions; i++ {
		select {
		case work <- opItem{index: i, lane: lanes[i%len(lanes)]}:
		case <-ctx.Done():
			i = plan.Submissions
		}
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		SchemaVersion:  ReportSchemaVersion,
		Kind:           ReportKind,
		Seed:           plan.Seed,
		Submissions:    plan.Submissions,
		ElapsedMS:      elapsed.Milliseconds(),
		Ops:            col.ops,
		States:         col.states,
		Errors:         col.errs,
		Deduped:        col.deduped,
		TracesUploaded: col.tracesUploaded,
		TracesDeduped:  col.tracesDeduped,
		CellsDone:      col.cellsDone,
		CellsSimulated: col.cellsSimulated,
		CellsPredicted: col.cellsPredicted,
		CellsFallback:  col.cellsFallback,
		PerTenant:      col.perTenant,
	}
	if col.cellsDone > 0 {
		rep.CacheHitRate = 1 - float64(col.cellsSimulated)/float64(col.cellsDone)
	}
	if n := col.cellsPredicted + col.cellsFallback; n > 0 {
		rep.FallbackRate = float64(col.cellsFallback) / float64(n)
	}
	rep.SubmitLatencyMS = summarize(col.submitMS)
	rep.E2ELatencyMS = summarize(col.e2eMS)
	rep.ApproxSubmitLatencyMS = summarize(col.approxSubmitMS)
	rep.ApproxE2ELatencyMS = summarize(col.approxE2eMS)
	// Empty maps serialize as {}; drop them so omitempty applies.
	if len(rep.States) == 0 {
		rep.States = nil
	}
	if len(rep.Errors) == 0 {
		rep.Errors = nil
	}
	return rep, ctx.Err()
}

// buildLanes creates one SDK client per tenant (or one anonymous
// lane).
func buildLanes(opt Options, plan Plan) ([]*lane, error) {
	mk := func(name, key string) (*lane, error) {
		cl, err := client.New(client.Config{
			BaseURL: opt.BaseURL,
			APIKey:  key,
			Retries: opt.Retries,
			HTTP:    &http.Client{},
		})
		if err != nil {
			return nil, err
		}
		return &lane{name: name, cl: cl}, nil
	}
	if len(plan.Tenants) == 0 {
		ln, err := mk("", "")
		if err != nil {
			return nil, err
		}
		return []*lane{ln}, nil
	}
	lanes := make([]*lane, 0, len(plan.Tenants))
	for _, t := range plan.Tenants {
		ln, err := mk(t.Name, t.Key)
		if err != nil {
			return nil, err
		}
		lanes = append(lanes, ln)
	}
	return lanes, nil
}

// pickKind draws the op's mix kind from the weighted plan.
func pickKind(plan Plan, r uint64) string {
	total := 0
	for _, m := range plan.Mix {
		total += m.Weight
	}
	n := int(r % uint64(total))
	for _, m := range plan.Mix {
		if n < m.Weight {
			return m.Kind
		}
		n -= m.Weight
	}
	return plan.Mix[len(plan.Mix)-1].Kind
}

// runOp executes operation i of the plan on the given lane. Every
// random choice chains from SplitMix64(seed, i), so the submitted
// work is identical across replays regardless of goroutine schedule.
func runOp(ctx context.Context, plan Plan, ln *lane, i int, col *collector, traces *tracePool) {
	r0 := stats.SplitMix64(plan.Seed ^ (uint64(i)+1)*0x9E3779B97F4A7C15)
	kind := pickKind(plan, r0)
	r1 := stats.SplitMix64(r0)
	col.op(ln.name, kind)

	switch kind {
	case KindTraceUpload:
		payload := traces.payload(r1)
		startAt := time.Now()
		doc, err := ln.cl.UploadTrace(ctx, payload, "")
		if err != nil {
			col.fail(ln.name, classify(err))
			return
		}
		col.mu.Lock()
		col.submitMS = append(col.submitMS, float64(time.Since(startAt).Microseconds())/1000)
		if doc.Deduped {
			col.tracesDeduped++
		} else {
			col.tracesUploaded++
		}
		col.mu.Unlock()
		return
	case KindCancelMid:
		req := jobShape(plan, KindCancelMid, r1, i)
		startAt := time.Now()
		sub, err := ln.cl.Submit(ctx, req)
		if err != nil {
			col.fail(ln.name, classify(err))
			return
		}
		submitMS := float64(time.Since(startAt).Microseconds()) / 1000
		// Canceling drops this lane's ownership of the job, so any
		// follow-up poll would (correctly) be forbidden; the cancel
		// response itself carries the job's final status for us.
		doc, err := ln.cl.Cancel(ctx, sub.ID)
		if err != nil {
			col.fail(ln.name, classify(err))
			return
		}
		col.mu.Lock()
		col.submitMS = append(col.submitMS, submitMS)
		col.e2eMS = append(col.e2eMS, float64(time.Since(startAt).Microseconds())/1000)
		col.states[doc.State]++
		if sub.Deduped {
			col.deduped++
		}
		col.mu.Unlock()
		return
	}

	// Submission kinds that wait for the full result. approx-query ops
	// land in their own latency lanes so the report compares
	// predicted-answer latency against the exact lanes directly.
	approx := kind == KindApproxQuery
	req := jobShape(plan, kind, r1, i)
	startAt := time.Now()
	sub, err := ln.cl.Submit(ctx, req)
	if err != nil {
		col.fail(ln.name, classify(err))
		return
	}
	submitMS := float64(time.Since(startAt).Microseconds()) / 1000
	doc, _, err := ln.cl.WaitResult(ctx, sub.ID)
	if err != nil {
		col.fail(ln.name, classify(err))
		return
	}
	col.mu.Lock()
	if approx {
		col.approxSubmitMS = append(col.approxSubmitMS, submitMS)
		col.approxE2eMS = append(col.approxE2eMS, float64(time.Since(startAt).Microseconds())/1000)
	} else {
		col.submitMS = append(col.submitMS, submitMS)
		col.e2eMS = append(col.e2eMS, float64(time.Since(startAt).Microseconds())/1000)
	}
	col.states[doc.State]++
	if sub.Deduped {
		col.deduped++
	}
	ok := uint64(doc.Cells.Done - doc.Cells.Failed)
	col.cellsDone += ok
	col.cellsSimulated += uint64(doc.Cells.Simulated)
	col.cellsPredicted += uint64(doc.Cells.Predicted)
	col.cellsFallback += uint64(doc.Cells.Fallback)
	col.mu.Unlock()
}

// jobShape derives op i's job request. dedup-heavy draws from a pool
// of 4 recurring shapes; cache-cold perturbs the warmup window per op
// so every submission mints fresh cell fingerprints; fault-plan
// attaches a deterministic transient-fault plan; cancel-mid-job uses
// a disjoint unique-warmup space so cancels never race a measured
// job's cells.
func jobShape(plan Plan, kind string, r uint64, i int) server.JobRequest {
	cfg := plan.Configurations[r%uint64(len(plan.Configurations))]
	wl := plan.Workloads[stats.SplitMix64(r)%uint64(len(plan.Workloads))]
	req := server.JobRequest{
		Configurations: []string{cfg},
		Workloads:      []string{wl},
		Warmup:         plan.Warmup,
		Measure:        plan.Measure,
	}
	switch kind {
	case KindDedupHeavy:
		// The pool's cell sets nest: shape p sweeps the first 1+p
		// configurations against the first workload, so replays hit
		// both the job-level dedupe (identical shapes re-join the same
		// job) and the cell-level result cache (a larger shape's
		// prefix cells were already resolved by a smaller one).
		p := r % 4
		n := 1 + int(p)%len(plan.Configurations)
		req.Configurations = append([]string(nil), plan.Configurations[:n]...)
		req.Workloads = []string{plan.Workloads[0]}
	case KindApproxQuery:
		// Same nested shape pool as dedup-heavy, submitted in
		// approximate mode: the exact dedup-heavy jobs train the node's
		// model on exactly these cells, so replays observe real
		// predicted answers (and real fallbacks while the model warms).
		p := r % 4
		n := 1 + int(p)%len(plan.Configurations)
		req.Configurations = append([]string(nil), plan.Configurations[:n]...)
		req.Workloads = []string{plan.Workloads[0]}
		req.Mode = server.ModeApproximate
	case KindCacheCold:
		req.Warmup = plan.Warmup + 1 + uint64(i)
	case KindCancelMid:
		req.Warmup = plan.Warmup + 1_000_000 + uint64(i)
	case KindFaultPlan:
		req.FaultPlan = &faultinject.Plan{
			Seed:          (r % 2) + 1,
			CellErrorProb: 0.5,
		}
	}
	return req
}

// tracePool synthesizes (and memoizes) the small ENTRACE1 payloads
// the trace-upload lane ingests: a fixed pool of 3 seeds, so replays
// mix fresh uploads with server-side dedup hits.
type tracePool struct {
	plan Plan
	mu   sync.Mutex
	mem  map[uint64][]byte
}

func newTracePool(plan Plan) *tracePool {
	return &tracePool{plan: plan, mem: map[uint64][]byte{}}
}

func (tp *tracePool) payload(r uint64) []byte {
	seed := 0xBEEF + r%3
	tp.mu.Lock()
	defer tp.mu.Unlock()
	if b, ok := tp.mem[seed]; ok {
		return b
	}
	p := workload.Preset(workload.Int)
	p.Name = fmt.Sprintf("loadgen-%d", seed)
	p.Seed = seed
	tr, err := workload.Materialize(workload.Spec{Name: p.Name, Params: p}, tp.plan.TraceInstructions)
	if err != nil {
		panic(fmt.Sprintf("loadgen: materializing synthetic trace: %v", err))
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, false)
	if err != nil {
		panic(fmt.Sprintf("loadgen: encoding synthetic trace: %v", err))
	}
	for j := range tr.Instrs {
		if err := w.Write(&tr.Instrs[j]); err != nil {
			panic(fmt.Sprintf("loadgen: encoding synthetic trace: %v", err))
		}
	}
	w.Close()
	tp.mem[seed] = buf.Bytes()
	return tp.mem[seed]
}
