package loadgen

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// ReportSchemaVersion identifies the LOAD_*.json layout. Bump on any
// incompatible change so downstream tooling refuses rather than
// misreads. v2 added the approximate-mode lanes (approx latency
// stats, predicted/fallback cell counts, fallback_rate).
const ReportSchemaVersion = 2

// ReportKind tags report documents.
const ReportKind = "entangling-loadgen-report"

// LatencyStats summarizes one latency population in milliseconds,
// nearest-rank percentiles.
type LatencyStats struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// summarize reduces a sample set to LatencyStats. The input is
// consumed (sorted in place).
func summarize(samples []float64) LatencyStats {
	if len(samples) == 0 {
		return LatencyStats{}
	}
	sort.Float64s(samples)
	rank := func(p float64) float64 {
		// Nearest-rank: the smallest sample ≥ the p-fraction of the
		// population. Exact for small N, no interpolation surprises.
		i := int(math.Ceil(p*float64(len(samples)))) - 1
		if i < 0 {
			i = 0
		}
		return samples[i]
	}
	return LatencyStats{
		Count: len(samples),
		P50:   rank(0.50),
		P90:   rank(0.90),
		P99:   rank(0.99),
		Max:   samples[len(samples)-1],
	}
}

// TenantOutcome is one lane's slice of the replay.
type TenantOutcome struct {
	Ops    int               `json:"ops"`
	Errors map[string]uint64 `json:"errors,omitempty"`
}

// Report is the versioned LOAD_*.json document a replay produces.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	Kind          string `json:"kind"`
	// Seed and Submissions echo the plan, so a report names the load
	// that produced it.
	Seed        uint64 `json:"seed"`
	Submissions int    `json:"submissions"`
	ElapsedMS   int64  `json:"elapsed_ms"`

	// Ops counts operations attempted per mix kind.
	Ops map[string]uint64 `json:"ops"`
	// States counts terminal job states observed (completed, canceled,
	// degraded, failed) across waited-on jobs.
	States map[string]uint64 `json:"states,omitempty"`
	// Errors is the rejection taxonomy: the server's machine-readable
	// reason (quota_cells_per_sec, queue_full, forbidden, ...) or
	// "transport" for connection-level failures.
	Errors map[string]uint64 `json:"errors,omitempty"`

	// Deduped counts submissions answered by an existing identical
	// job; TracesUploaded/TracesDeduped count the trace-upload lane.
	Deduped        uint64 `json:"deduped"`
	TracesUploaded uint64 `json:"traces_uploaded"`
	TracesDeduped  uint64 `json:"traces_deduped"`

	// CellsDone/CellsSimulated aggregate the cell provenance of every
	// waited-on result; CacheHitRate = 1 - simulated/done (failed
	// cells excluded from both).
	CellsDone      uint64  `json:"cells_done"`
	CellsSimulated uint64  `json:"cells_simulated"`
	CacheHitRate   float64 `json:"cache_hit_rate"`

	// CellsPredicted/CellsFallback aggregate approx-query outcomes:
	// cells answered by the node's model vs. cells that simulated
	// exactly after all; FallbackRate = fallback/(predicted+fallback)
	// (0 when the plan ran no approx-query ops).
	CellsPredicted uint64  `json:"cells_predicted"`
	CellsFallback  uint64  `json:"cells_fallback"`
	FallbackRate   float64 `json:"fallback_rate"`

	// SubmitLatencyMS measures the POST round trip; E2ELatencyMS
	// measures admission-to-result (submit start to terminal result)
	// for every job the replay waited on. The Approx* lanes isolate
	// approx-query ops so predicted-answer latency is directly
	// comparable with the exact lanes above.
	SubmitLatencyMS       LatencyStats `json:"submit_latency_ms"`
	E2ELatencyMS          LatencyStats `json:"e2e_latency_ms"`
	ApproxSubmitLatencyMS LatencyStats `json:"approx_submit_latency_ms"`
	ApproxE2ELatencyMS    LatencyStats `json:"approx_e2e_latency_ms"`

	// PerTenant breaks ops and errors down by submitting lane ("" for
	// anonymous load), keys sorted in the serialized form.
	PerTenant map[string]*TenantOutcome `json:"per_tenant,omitempty"`
}

// Validate reports the first structural problem with a report.
func (r Report) Validate() error {
	if r.SchemaVersion != ReportSchemaVersion {
		return fmt.Errorf("loadgen: report schema %d, want %d", r.SchemaVersion, ReportSchemaVersion)
	}
	if r.Kind != ReportKind {
		return fmt.Errorf("loadgen: report kind %q, want %q", r.Kind, ReportKind)
	}
	if r.Submissions <= 0 {
		return errors.New("loadgen: report has no submissions")
	}
	if r.CacheHitRate < 0 || r.CacheHitRate > 1 {
		return fmt.Errorf("loadgen: cache hit rate %v outside [0,1]", r.CacheHitRate)
	}
	if r.FallbackRate < 0 || r.FallbackRate > 1 {
		return fmt.Errorf("loadgen: fallback rate %v outside [0,1]", r.FallbackRate)
	}
	return nil
}

// ParseReport strictly decodes one report document.
func ParseReport(rd io.Reader) (Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return Report{}, fmt.Errorf("loadgen: parsing report: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return Report{}, errors.New("loadgen: trailing data after report document")
	}
	if err := r.Validate(); err != nil {
		return Report{}, err
	}
	return r, nil
}

// LoadReportFile reads and parses a LOAD_*.json file.
func LoadReportFile(path string) (Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("loadgen: %w", err)
	}
	return ParseReport(bytes.NewReader(b))
}

// WriteFile serializes the report (indented, trailing newline).
func (r Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("loadgen: encoding report: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Thresholds are the CI regression gates: zero fields are unchecked.
type Thresholds struct {
	// MaxE2EP99MS fails the check when admission-to-result p99 exceeds
	// it.
	MaxE2EP99MS float64 `json:"max_e2e_p99_ms,omitempty"`
	// MinCacheHitRate fails the check when the replay's aggregate cell
	// cache hit-rate falls below it.
	MinCacheHitRate float64 `json:"min_cache_hit_rate,omitempty"`
	// MaxTransportErrors fails the check when connection-level errors
	// exceed it (CI wants exactly 0: every op must reach the server).
	MaxTransportErrors uint64 `json:"max_transport_errors,omitempty"`
	// FailOnTransport enables the MaxTransportErrors gate even at 0.
	FailOnTransport bool `json:"fail_on_transport,omitempty"`
}

// Check evaluates every configured gate and returns the first
// violation (nil when all pass).
func (r Report) Check(t Thresholds) error {
	if t.MaxE2EP99MS > 0 && r.E2ELatencyMS.P99 > t.MaxE2EP99MS {
		return fmt.Errorf("loadgen: e2e p99 %.1fms exceeds threshold %.1fms",
			r.E2ELatencyMS.P99, t.MaxE2EP99MS)
	}
	if t.MinCacheHitRate > 0 && r.CacheHitRate < t.MinCacheHitRate {
		return fmt.Errorf("loadgen: cache hit rate %.3f below threshold %.3f",
			r.CacheHitRate, t.MinCacheHitRate)
	}
	if t.FailOnTransport || t.MaxTransportErrors > 0 {
		if n := r.Errors["transport"]; n > t.MaxTransportErrors {
			return fmt.Errorf("loadgen: %d transport errors exceed threshold %d",
				n, t.MaxTransportErrors)
		}
	}
	return nil
}
