package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"entangling/internal/leakcheck"
	"entangling/internal/server"
)

// TestReportRoundTrip: a report written to disk re-parses into the
// identical document under the strict decoder — the LOAD_*.json
// contract CI and downstream tooling depend on.
func TestReportRoundTrip(t *testing.T) {
	rep := &Report{
		SchemaVersion:  ReportSchemaVersion,
		Kind:           ReportKind,
		Seed:           42,
		Submissions:    64,
		ElapsedMS:      1234,
		Ops:            map[string]uint64{KindDedupHeavy: 40, KindCacheCold: 24},
		States:         map[string]uint64{"completed": 60, "canceled": 4},
		Errors:         map[string]uint64{"quota_cells_per_sec": 3},
		Deduped:        17,
		TracesUploaded: 3,
		TracesDeduped:  5,
		CellsDone:      120,
		CellsSimulated: 30,
		CacheHitRate:   0.75,
		CellsPredicted: 16,
		CellsFallback:  4,
		FallbackRate:   0.2,
		SubmitLatencyMS: LatencyStats{
			Count: 64, P50: 1.5, P90: 3.25, P99: 9, Max: 12,
		},
		E2ELatencyMS: LatencyStats{
			Count: 61, P50: 20, P90: 55, P99: 140, Max: 150,
		},
		ApproxSubmitLatencyMS: LatencyStats{
			Count: 12, P50: 1.1, P90: 2.5, P99: 4, Max: 5,
		},
		ApproxE2ELatencyMS: LatencyStats{
			Count: 12, P50: 4, P90: 9, P99: 15, Max: 16,
		},
		PerTenant: map[string]*TenantOutcome{
			"acme": {Ops: 32, Errors: map[string]uint64{"quota_cells_per_sec": 3}},
			"zeta": {Ops: 32},
		},
	}
	path := t.TempDir() + "/LOAD_test.json"
	if err := rep.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := LoadReportFile(path)
	if err != nil {
		t.Fatalf("LoadReportFile: %v", err)
	}
	if !reflect.DeepEqual(got, *rep) {
		t.Fatalf("round trip changed the report:\nwrote %+v\nread  %+v", *rep, got)
	}
}

// TestReportParseRejections: the strict decoder refuses unknown
// fields, trailing data, wrong kinds/schemas and out-of-range rates.
func TestReportParseRejections(t *testing.T) {
	valid := `{"schema_version":2,"kind":"entangling-loadgen-report","seed":1,"submissions":4,` +
		`"elapsed_ms":10,"ops":{"cache-cold":4},"deduped":0,"traces_uploaded":0,"traces_deduped":0,` +
		`"cells_done":4,"cells_simulated":4,"cache_hit_rate":0,` +
		`"cells_predicted":2,"cells_fallback":1,"fallback_rate":0.334,` +
		`"submit_latency_ms":{"count":4,"p50":1,"p90":1,"p99":1,"max":1},` +
		`"e2e_latency_ms":{"count":4,"p50":1,"p90":1,"p99":1,"max":1},` +
		`"approx_submit_latency_ms":{"count":1,"p50":1,"p90":1,"p99":1,"max":1},` +
		`"approx_e2e_latency_ms":{"count":1,"p50":1,"p90":1,"p99":1,"max":1}}`
	if _, err := ParseReport(strings.NewReader(valid)); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	for name, doc := range map[string]string{
		"unknown field":     strings.Replace(valid, `"seed":1`, `"seed":1,"p999":7`, 1),
		"trailing data":     valid + `{"second":"doc"}`,
		"wrong schema":      strings.Replace(valid, `"schema_version":2`, `"schema_version":9`, 1),
		"old schema":        strings.Replace(valid, `"schema_version":2`, `"schema_version":1`, 1),
		"wrong kind":        strings.Replace(valid, "entangling-loadgen-report", "mystery-report", 1),
		"bad hit rate":      strings.Replace(valid, `"cache_hit_rate":0`, `"cache_hit_rate":1.5`, 1),
		"bad fallback rate": strings.Replace(valid, `"fallback_rate":0.334`, `"fallback_rate":-0.5`, 1),
		"no work":           strings.Replace(valid, `"submissions":4`, `"submissions":0`, 1),
	} {
		if _, err := ParseReport(strings.NewReader(doc)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

// TestPlanValidation: the default plan is valid; structural mistakes
// are refused with specific errors; the strict parser refuses unknown
// fields.
func TestPlanValidation(t *testing.T) {
	if err := DefaultPlan().Validate(); err != nil {
		t.Fatalf("default plan invalid: %v", err)
	}
	mut := func(f func(*Plan)) Plan {
		p := DefaultPlan()
		f(&p)
		return p
	}
	for name, p := range map[string]Plan{
		"wrong schema":    mut(func(p *Plan) { p.SchemaVersion = 2 }),
		"no submissions":  mut(func(p *Plan) { p.Submissions = 0 }),
		"no measure":      mut(func(p *Plan) { p.Measure = 0 }),
		"no workloads":    mut(func(p *Plan) { p.Workloads = nil }),
		"no mix":          mut(func(p *Plan) { p.Mix = nil }),
		"unknown kind":    mut(func(p *Plan) { p.Mix[0].Kind = "chaos-monkey" }),
		"zero weight":     mut(func(p *Plan) { p.Mix[0].Weight = 0 }),
		"duplicate kind":  mut(func(p *Plan) { p.Mix[1].Kind = p.Mix[0].Kind }),
		"keyless tenant":  mut(func(p *Plan) { p.Tenants = []TenantLane{{Name: "a"}} }),
		"dup tenant lane": mut(func(p *Plan) { p.Tenants = []TenantLane{{Name: "a", Key: "k1"}, {Name: "a", Key: "k2"}} }),
	} {
		if err := p.Validate(); err == nil {
			t.Fatalf("%s: validated", name)
		}
	}
	if _, err := ParsePlan(strings.NewReader(`{"schema_version":1,"submissions":1,"warmupp":5}`)); err == nil {
		t.Fatalf("plan with unknown field accepted")
	}
}

// TestThresholdChecks: each regression gate fires on its own
// violation and stays silent otherwise.
func TestThresholdChecks(t *testing.T) {
	rep := Report{
		E2ELatencyMS: LatencyStats{P99: 100},
		CacheHitRate: 0.5,
		Errors:       map[string]uint64{"transport": 2},
	}
	if err := rep.Check(Thresholds{}); err != nil {
		t.Fatalf("empty thresholds must pass: %v", err)
	}
	if err := rep.Check(Thresholds{MaxE2EP99MS: 1000, MinCacheHitRate: 0.25, MaxTransportErrors: 5}); err != nil {
		t.Fatalf("satisfied thresholds must pass: %v", err)
	}
	for name, th := range map[string]Thresholds{
		"p99":       {MaxE2EP99MS: 99},
		"hit rate":  {MinCacheHitRate: 0.6},
		"transport": {FailOnTransport: true},
	} {
		if err := rep.Check(th); err == nil {
			t.Fatalf("%s gate did not fire", name)
		}
	}
}

// TestSummarizeNearestRank pins the percentile definition: nearest
// rank, no interpolation.
func TestSummarizeNearestRank(t *testing.T) {
	samples := []float64{5, 1, 4, 2, 3, 6, 7, 8, 9, 10}
	got := summarize(samples)
	want := LatencyStats{Count: 10, P50: 5, P90: 9, P99: 10, Max: 10}
	if got != want {
		t.Fatalf("summarize = %+v, want %+v", got, want)
	}
	if (summarize(nil) != LatencyStats{}) {
		t.Fatalf("empty population must summarize to zeros")
	}
	one := summarize([]float64{3})
	if one.P50 != 3 || one.P99 != 3 || one.Count != 1 {
		t.Fatalf("single sample: %+v", one)
	}
}

// TestRunEndToEnd replays a small mixed plan against an in-process
// node: every operation is accounted for exactly once, no transport
// errors, and the report passes its own validation.
func TestRunEndToEnd(t *testing.T) {
	leakcheck.Check(t)
	s, err := server.New(server.Config{
		Workers:         2,
		CellParallelism: 2,
		QueueCapacity:   16,
		PerCategory:     1,
		TraceDir:        t.TempDir(),
		DrainGrace:      2 * time.Second,
		Approximate:     true, // the default mix carries approx-query ops
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer func() {
		s.Drain()
		ts.Close()
	}()

	plan := DefaultPlan()
	plan.Submissions = 24
	plan.Concurrency = 3
	plan.Warmup = 3_000
	plan.Measure = 1_000
	plan.TraceInstructions = 500
	plan.Configurations = []string{"no", "nextline"}
	plan.Workloads = []string{"crypto-00"}

	rep, err := Run(context.Background(), Options{BaseURL: ts.URL, Plan: plan, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	var total uint64
	for kind, n := range rep.Ops {
		if !knownKinds[kind] {
			t.Fatalf("report counts unknown op kind %q", kind)
		}
		total += n
	}
	if total != uint64(plan.Submissions) {
		t.Fatalf("ops sum to %d, want %d (every submission accounted once)", total, plan.Submissions)
	}
	if n := rep.Errors["transport"]; n != 0 {
		t.Fatalf("%d transport errors against a live in-process node", n)
	}
	if rep.CellsDone == 0 || rep.E2ELatencyMS.Count == 0 {
		t.Fatalf("replay did no measurable work: %+v", rep)
	}
	if rep.CacheHitRate < 0 || rep.CacheHitRate > 1 {
		t.Fatalf("cache hit rate %v outside [0,1]", rep.CacheHitRate)
	}
	if lane := rep.PerTenant[""]; lane == nil || lane.Ops != plan.Submissions {
		t.Fatalf("anonymous lane accounting wrong: %+v", rep.PerTenant)
	}
	if err := rep.Check(Thresholds{FailOnTransport: true}); err != nil {
		t.Fatalf("transport gate failed on a clean replay: %v", err)
	}

	// The same plan replayed again is deterministic in shape: the op
	// mix is identical (timing of course differs).
	rep2, err := Run(context.Background(), Options{BaseURL: ts.URL, Plan: plan})
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if !reflect.DeepEqual(rep.Ops, rep2.Ops) {
		t.Fatalf("op mix not deterministic across replays:\nfirst  %v\nsecond %v", rep.Ops, rep2.Ops)
	}
	// And the second replay is warmer: nothing needs simulating twice.
	if rep2.CacheHitRate < rep.CacheHitRate {
		t.Fatalf("second replay hit rate %v below first %v", rep2.CacheHitRate, rep.CacheHitRate)
	}
}

// TestRunRejectsBadSetup: an invalid plan and an unreachable node are
// setup errors, not taxonomy entries.
func TestRunRejectsBadSetup(t *testing.T) {
	bad := DefaultPlan()
	bad.Mix = nil
	if _, err := Run(context.Background(), Options{BaseURL: "http://127.0.0.1:1", Plan: bad}); err == nil {
		t.Fatalf("invalid plan accepted")
	}
	ok := DefaultPlan()
	ok.Submissions = 1
	if _, err := Run(context.Background(), Options{BaseURL: "http://127.0.0.1:1", Plan: ok, Retries: 1}); err == nil {
		t.Fatalf("unreachable node accepted")
	}
}

// TestPlanFileRoundTrip: a plan printed by -print-plan loads back
// identically.
func TestPlanFileRoundTrip(t *testing.T) {
	p := DefaultPlan()
	p.Tenants = []TenantLane{{Name: "acme", Key: "acme-key-0001"}}
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := ParsePlan(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("plan round trip changed:\nwrote %+v\nread  %+v", p, got)
	}
}
