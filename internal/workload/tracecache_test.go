package workload

import (
	"errors"
	"sync"
	"testing"

	"entangling/internal/trace"
)

func testSpec(t *testing.T) Spec {
	t.Helper()
	specs := CVPSuite(1)
	if len(specs) == 0 {
		t.Fatal("CVPSuite returned no specs")
	}
	return specs[0]
}

func TestMaterializeMatchesWalker(t *testing.T) {
	spec := testSpec(t)
	const n = 2000

	tr, err := Materialize(spec, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Instrs) != n {
		t.Fatalf("materialized %d instructions, want %d", len(tr.Instrs), n)
	}
	if tr.Name != spec.Name {
		t.Errorf("trace name %q, want %q", tr.Name, spec.Name)
	}

	// The materialized stream must be exactly what a fresh walker
	// produces — that identity is what makes sharing one trace across
	// configurations behaviour-preserving.
	w, err := spec.New()
	if err != nil {
		t.Fatal(err)
	}
	var in trace.Instruction
	for i := 0; i < n; i++ {
		if !w.Next(&in) {
			t.Fatalf("walker ended early at %d", i)
		}
		if in != tr.Instrs[i] {
			t.Fatalf("instruction %d diverges: walker %+v, trace %+v", i, in, tr.Instrs[i])
		}
	}
}

func TestTraceSourceIndependentReaders(t *testing.T) {
	tr := &Trace{Instrs: []trace.Instruction{{PC: 1}, {PC: 2}, {PC: 3}}}
	a, b := tr.Source(), tr.Source()
	var in trace.Instruction
	if !a.Next(&in) || in.PC != 1 {
		t.Fatal("reader a out of position")
	}
	if !a.Next(&in) || in.PC != 2 {
		t.Fatal("reader a out of position")
	}
	// b starts at the beginning regardless of a's progress.
	if !b.Next(&in) || in.PC != 1 {
		t.Fatal("reader b shares position with a")
	}
}

func TestTraceCacheRefcount(t *testing.T) {
	spec := testSpec(t)
	c := NewTraceCache()

	t1, err := c.Acquire(spec, 100)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c.Acquire(spec, 100)
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("second Acquire did not share the materialized trace")
	}
	if builds, hits, resident := c.CacheStats(); builds != 1 || hits != 1 || resident != 1 {
		t.Errorf("stats after 2 acquires: builds=%d hits=%d resident=%d", builds, hits, resident)
	}

	// A different window is a different entry.
	if _, err := c.Acquire(spec, 50); err != nil {
		t.Fatal(err)
	}
	if builds, _, resident := c.CacheStats(); builds != 2 || resident != 2 {
		t.Errorf("stats after second window: builds=%d resident=%d", builds, resident)
	}

	c.Release(spec, 100)
	if _, _, resident := c.CacheStats(); resident != 2 {
		t.Errorf("entry evicted with a reference outstanding (resident=%d)", resident)
	}
	c.Release(spec, 100)
	if _, _, resident := c.CacheStats(); resident != 1 {
		t.Errorf("entry not evicted after last Release (resident=%d)", resident)
	}
	// Releasing an absent entry is a no-op.
	c.Release(spec, 100)
}

func TestTraceCacheRetainKeepsEntryAlive(t *testing.T) {
	spec := testSpec(t)
	c := NewTraceCache()

	if _, err := c.Acquire(spec, 100); err != nil {
		t.Fatal(err)
	}
	// Retain takes a second reference without counting a hit.
	if !c.Retain(spec, 100) {
		t.Fatal("Retain missed a resident entry")
	}
	if builds, hits, _ := c.CacheStats(); builds != 1 || hits != 0 {
		t.Errorf("builds=%d hits=%d after Acquire+Retain, want 1 and 0", builds, hits)
	}

	// The acquirer's Release leaves the retained entry resident; a
	// re-Acquire across the gap is a hit, not a rebuild.
	c.Release(spec, 100)
	if _, _, resident := c.CacheStats(); resident != 1 {
		t.Fatalf("retained entry evicted (resident=%d)", resident)
	}
	if _, err := c.Acquire(spec, 100); err != nil {
		t.Fatal(err)
	}
	if builds, hits, _ := c.CacheStats(); builds != 1 || hits != 1 {
		t.Errorf("builds=%d hits=%d after re-Acquire, want 1 and 1", builds, hits)
	}

	// Dropping both remaining references evicts.
	c.Release(spec, 100)
	c.Release(spec, 100)
	if _, _, resident := c.CacheStats(); resident != 0 {
		t.Errorf("entry survived its last Release (resident=%d)", resident)
	}
	// Retain on an absent entry reports the miss and takes nothing.
	if c.Retain(spec, 100) {
		t.Error("Retain claimed an evicted entry")
	}
}

func TestTraceCacheConcurrentAcquireBuildsOnce(t *testing.T) {
	spec := testSpec(t)
	c := NewTraceCache()
	const workers = 16

	// All 16 acquirers hold their references until every Acquire has
	// returned (the barrier below), so no interleaving of releases can
	// empty the refcount mid-test and legitimize a second build.
	traces := make([]*Trace, workers)
	barrier := make(chan struct{})
	var acquired, done sync.WaitGroup
	for i := 0; i < workers; i++ {
		acquired.Add(1)
		done.Add(1)
		go func(i int) {
			defer done.Done()
			tr, err := c.Acquire(spec, 200)
			if err != nil {
				t.Error(err)
				acquired.Done()
				return
			}
			traces[i] = tr
			acquired.Done()
			<-barrier
			c.Release(spec, 200)
		}(i)
	}
	acquired.Wait()
	close(barrier)
	done.Wait()

	for i := 1; i < workers; i++ {
		if traces[i] != traces[0] {
			t.Fatal("concurrent acquires produced distinct traces")
		}
	}
	if builds, hits, resident := c.CacheStats(); builds != 1 || hits != workers-1 || resident != 0 {
		t.Errorf("builds=%d hits=%d resident=%d, want 1, %d, 0", builds, hits, resident, workers-1)
	}
}

func TestTraceCachePinSurvivesRelease(t *testing.T) {
	spec := testSpec(t)
	c := NewTraceCache()

	pinned, err := c.Pin(spec, 100)
	if err != nil {
		t.Fatal(err)
	}
	// An Acquire of a pinned entry is a hit and shares the trace.
	got, err := c.Acquire(spec, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != pinned {
		t.Error("Acquire after Pin rebuilt the trace")
	}
	// No number of Releases evicts a pinned entry.
	for i := 0; i < 5; i++ {
		c.Release(spec, 100)
	}
	if _, _, resident := c.CacheStats(); resident != 1 {
		t.Errorf("pinned entry evicted (resident=%d)", resident)
	}
	if builds, hits, _ := c.CacheStats(); builds != 1 || hits != 1 {
		t.Errorf("builds=%d hits=%d after Pin+Acquire, want 1 and 1", builds, hits)
	}

	// Pinning an entry acquired first also protects it.
	if _, err := c.Acquire(spec, 30); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Pin(spec, 30); err != nil {
		t.Fatal(err)
	}
	c.Release(spec, 30)
	if _, _, resident := c.CacheStats(); resident != 2 {
		t.Errorf("late-pinned entry evicted (resident=%d)", resident)
	}
}

func TestTraceCacheAcquireHook(t *testing.T) {
	spec := testSpec(t)
	c := NewTraceCache()

	fail := errors.New("injected")
	calls := 0
	c.SetAcquireHook(func(name string, n uint64) error {
		calls++
		if name != spec.Name || n != 100 {
			t.Errorf("hook saw (%s, %d), want (%s, 100)", name, n, spec.Name)
		}
		if calls == 1 {
			return fail
		}
		return nil
	})

	// A hook-failed Acquire takes no reference and builds nothing.
	if _, err := c.Acquire(spec, 100); !errors.Is(err, fail) {
		t.Fatalf("Acquire error = %v, want wrapped %v", err, fail)
	}
	if builds, hits, resident := c.CacheStats(); builds != 0 || hits != 0 || resident != 0 {
		t.Fatalf("failed Acquire touched the cache: builds=%d hits=%d resident=%d", builds, hits, resident)
	}

	// Retries succeed and their references drain the entry as usual.
	for i := 0; i < 2; i++ {
		if _, err := c.Acquire(spec, 100); err != nil {
			t.Fatal(err)
		}
	}
	c.Release(spec, 100)
	c.Release(spec, 100)
	if _, _, resident := c.CacheStats(); resident != 0 {
		t.Errorf("entry not evicted after last Release (resident=%d)", resident)
	}

	// Removing the hook restores unconditional acquires.
	c.SetAcquireHook(nil)
	if _, err := c.Acquire(spec, 100); err != nil {
		t.Fatal(err)
	}
}
