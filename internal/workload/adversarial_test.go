package workload

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"entangling/internal/trace"
)

// streamOf materializes n instructions of a category at a seed.
func streamOf(t *testing.T, cat Category, seed, n uint64) []trace.Instruction {
	t.Helper()
	p := Preset(cat)
	p.Name = string(cat) + "-test"
	p.Seed = seed
	prog, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalker(prog)
	out := make([]trace.Instruction, n)
	for i := range out {
		if !w.Next(&out[i]) {
			t.Fatalf("%s: walker ended at %d", cat, i)
		}
	}
	return out
}

func TestAdversarialSuiteSpecs(t *testing.T) {
	suite := AdversarialSuite()
	if len(suite) != 3 {
		t.Fatalf("AdversarialSuite has %d specs, want 3", len(suite))
	}
	seen := map[Category]bool{}
	for _, s := range suite {
		if err := s.Params.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if _, err := s.New(); err != nil {
			t.Errorf("%s: New: %v", s.Name, err)
		}
		seen[s.Params.Category] = true
	}
	for _, c := range []Category{JIT, Micro, Serverless} {
		if !seen[c] {
			t.Errorf("suite missing category %s", c)
		}
	}
}

func TestAdversarialDeterminism(t *testing.T) {
	for _, cat := range []Category{JIT, Micro, Serverless} {
		a := streamOf(t, cat, 9, 100_000)
		b := streamOf(t, cat, 9, 100_000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: streams diverge at %d: %+v vs %+v", cat, i, a[i], b[i])
			}
		}
	}
}

// TestJITRelocationMovesCode checks the defining behaviour: after a
// code phase, a meaningful fraction of fetches land in the relocation
// arena, at addresses no early-phase fetch used.
func TestJITRelocationMovesCode(t *testing.T) {
	p := Preset(JIT)
	if p.CodePhaseLen == 0 || p.CodeRelocFrac == 0 {
		t.Fatal("JIT preset has relocation disabled")
	}
	ins := streamOf(t, JIT, 4, 1_500_000)
	arena := CodeBase + uint64(1)<<30
	var early, lateArena, late uint64
	for i, in := range ins {
		if uint64(i) < p.CodePhaseLen {
			early++
			if in.PC >= arena {
				t.Fatalf("instr %d: arena address %#x before the first code phase", i, in.PC)
			}
		} else if uint64(i) >= uint64(len(ins))-p.CodePhaseLen {
			late++
			if in.PC >= arena {
				lateArena++
			}
		}
	}
	if lateArena == 0 {
		t.Error("no fetches from the relocation arena after several code phases")
	}
	if frac := float64(lateArena) / float64(late); frac < 0.05 {
		t.Errorf("only %.1f%% of late fetches are relocated code", 100*frac)
	}
}

// TestMicroInterruptExcursions checks interrupts fire at roughly the
// configured rate, transfer control via indirect calls into the handler
// region, and re-execute the interrupted PC on return.
func TestMicroInterruptExcursions(t *testing.T) {
	p := Preset(Micro)
	p.Name = "micro-test"
	p.Seed = 21
	prog, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	handlerLo := prog.Funcs[len(prog.Funcs)-p.InterruptFns].Entry()

	const n = 400_000
	ins := streamOf(t, Micro, 21, n)
	var intoHandlers int
	reexec := 0
	for i := 0; i < n-1; i++ {
		in := ins[i]
		if in.Branch == trace.IndirectCall && in.Taken && in.Target >= handlerLo {
			intoHandlers++
			// Find the matching return and check it targets the
			// interrupted PC (the same address fetched again).
			depth := 1
			for j := i + 1; j < n && j < i+50_000; j++ {
				if ins[j].Branch.IsCall() {
					depth++
				}
				if ins[j].Branch == trace.Return {
					depth--
					if depth == 0 {
						if ins[j].Target == in.PC {
							reexec++
						}
						break
					}
				}
			}
		}
	}
	want := n / int(p.InterruptEvery)
	if intoHandlers < want/4 || intoHandlers > want*4 {
		t.Errorf("%d handler entries in %d instrs, want about %d", intoHandlers, n, want)
	}
	if reexec == 0 {
		t.Error("no excursion re-executed the interrupted PC")
	}
}

// TestServerlessColdEpochsAreDisjoint checks each cold epoch fetches
// from a code mapping disjoint with every earlier epoch's.
func TestServerlessColdEpochsAreDisjoint(t *testing.T) {
	p := Preset(Serverless)
	if p.ColdEvery == 0 {
		t.Fatal("Serverless preset has cold restarts disabled")
	}
	n := 3*p.ColdEvery + p.ColdEvery/2
	ins := streamOf(t, Serverless, 31, n)

	epochLines := make([]map[uint64]struct{}, 4)
	for e := range epochLines {
		epochLines[e] = make(map[uint64]struct{})
	}
	for i, in := range ins {
		epochLines[uint64(i)/p.ColdEvery][in.PC>>6] = struct{}{}
	}
	for a := 0; a < len(epochLines); a++ {
		for b := a + 1; b < len(epochLines); b++ {
			for line := range epochLines[b] {
				if _, ok := epochLines[a][line]; ok {
					t.Fatalf("epochs %d and %d share code line %#x", a, b, line<<6)
				}
			}
		}
	}
	// Discontinuities happen only at epoch boundaries.
	for i := 1; i < len(ins); i++ {
		if ins[i-1].NextPC() != ins[i].PC && uint64(i)%p.ColdEvery != 0 {
			t.Fatalf("discontinuity at %d, not an epoch boundary", i)
		}
	}
}

// TestAdversarialStreamsEncode runs every adversarial stream through
// the codec: the walker must only emit records Writer accepts.
func TestAdversarialStreamsEncode(t *testing.T) {
	for _, cat := range []Category{JIT, Micro, Serverless} {
		ins := streamOf(t, cat, 17, 200_000)
		var buf bytes.Buffer
		w, _ := trace.NewWriter(&buf, false)
		for i := range ins {
			if err := w.Write(&ins[i]); err != nil {
				t.Fatalf("%s: record %d: %v", cat, i, err)
			}
		}
	}
}

func TestValidateRejectsBadAdversarialParams(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.CodeRelocFrac = 1.5 },
		func(p *Params) { p.CodeRelocFrac = -0.1 },
		func(p *Params) { p.InterruptEvery = 100; p.InterruptFns = 0 },
		func(p *Params) { p.InterruptEvery = 100; p.InterruptFns = p.Functions - 1 },
		func(p *Params) { p.InterruptEvery = 0; p.InterruptFns = 3 },
	}
	for i, mutate := range cases {
		p := Preset(Int)
		p.Name = "case"
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid adversarial params accepted", i)
		}
	}
}

// --- trace-backed specs ---

func encodeTestTrace(t *testing.T, n int) ([]byte, uint64) {
	t.Helper()
	p := Preset(Int)
	p.Name = "fixture"
	p.Seed = 5
	prog, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalker(prog)
	var buf bytes.Buffer
	tw, _ := trace.NewWriter(&buf, false)
	var in trace.Instruction
	for i := 0; i < n; i++ {
		w.Next(&in)
		if err := tw.Write(&in); err != nil {
			t.Fatal(err)
		}
	}
	tw.Close()
	return buf.Bytes(), tw.Count()
}

func TestTraceSpecMaterializes(t *testing.T) {
	payload, _ := encodeTestTrace(t, 5_000)
	spec := TraceSpec("trace:abc", "abc123", func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(payload)), nil
	})
	if !spec.TraceBacked() {
		t.Fatal("TraceSpec not trace-backed")
	}
	if err := spec.Params.Validate(); err != nil {
		t.Fatalf("trace-backed params fail validation: %v", err)
	}

	tr, err := Materialize(spec, 3_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Instrs) != 3_000 {
		t.Fatalf("materialized %d instrs, want 3000", len(tr.Instrs))
	}

	// A second materialization decodes identical content, and the cache
	// singleflights both under one entry.
	again, err := Materialize(spec, 3_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Instrs {
		if tr.Instrs[i] != again.Instrs[i] {
			t.Fatalf("re-materialization differs at %d", i)
		}
	}
	tc := NewTraceCache()
	if _, err := tc.Acquire(spec, 3_000); err != nil {
		t.Fatal(err)
	}
	defer tc.Release(spec, 3_000)
	if builds, _, _ := func() (uint64, uint64, int) { return tc.CacheStats() }(); builds != 1 {
		t.Errorf("cache builds = %d, want 1", builds)
	}
}

func TestTraceSpecWithoutOpener(t *testing.T) {
	spec := TraceSpec("trace:abc", "abc123", nil)
	if _, err := Materialize(spec, 100); err == nil {
		t.Error("materializing an opener-less trace spec did not fail")
	}
	if _, err := spec.New(); err == nil {
		t.Error("Spec.New on a trace-backed spec did not fail")
	}
}

func TestTraceSpecOpenerError(t *testing.T) {
	wantErr := errors.New("storage offline")
	spec := TraceSpec("trace:abc", "abc123", func() (io.ReadCloser, error) {
		return nil, wantErr
	})
	if _, err := Materialize(spec, 100); !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want %v", err, wantErr)
	}
}

func TestBudgetSkipsShapeChecksForTraces(t *testing.T) {
	b := Budget{MaxTraceInstrs: 10_000, MaxStaticInstrs: 1, MaxDataFootprint: 1}
	spec := TraceSpec("trace:abc", "abc123", nil)
	// Shape caps (static instrs, footprint) do not apply to real traces...
	if err := b.Check(spec, 5_000); err != nil {
		t.Errorf("trace spec rejected by shape checks: %v", err)
	}
	// ...but the stream-length cap still does.
	if err := b.Check(spec, 20_000); err == nil {
		t.Error("over-length trace window accepted")
	}
}

func TestBudgetDecodeLimits(t *testing.T) {
	b := Budget{MaxTraceInstrs: 123}
	lim := b.DecodeLimits(456)
	if lim.MaxInstrs != 123 || lim.MaxBytes != 456 {
		t.Errorf("DecodeLimits = %+v", lim)
	}
}
