package workload

import (
	"fmt"
	"sync"

	"entangling/internal/trace"
)

// This file implements the suite-sweep trace cache. A configurations x
// workloads sweep used to regenerate (build the program, walk the CFG,
// synthesize data addresses for) every workload's instruction stream
// once per configuration — N_cfgs x N_specs generations of N_specs
// distinct streams. The cache materializes each spec's stream once
// into an immutable instruction slice shared read-only by every
// configuration, and evicts it as soon as the last configuration has
// consumed it, so a sweep's resident trace set stays proportional to
// the worker count, not the suite size.

// Trace is an immutable, materialized instruction stream. It is safe
// to share across goroutines; each reader gets its own Source.
type Trace struct {
	// Name is the workload the trace was materialized from.
	Name string
	// Instrs is the instruction stream. Readers must not mutate it.
	Instrs []trace.Instruction
}

// Source returns a fresh reader over the trace.
func (t *Trace) Source() trace.Source {
	return &trace.SliceSource{Instrs: t.Instrs}
}

// Materialize builds a spec's program and walks exactly n instructions
// into an immutable trace. Two calls with the same spec and n yield
// identical streams (the walk is deterministic), which is what makes
// sharing one materialization across configurations behaviour-
// preserving.
func Materialize(spec Spec, n uint64) (*Trace, error) {
	w, err := spec.New()
	if err != nil {
		return nil, err
	}
	instrs := make([]trace.Instruction, n)
	for i := range instrs {
		if !w.Next(&instrs[i]) {
			instrs = instrs[:i]
			break
		}
	}
	return &Trace{Name: spec.Name, Instrs: instrs}, nil
}

// TraceCache shares materialized traces between the runs of a sweep.
// Entries are refcounted: Acquire declares up front how many times the
// trace will be used in total, and the matching Releases evict it once
// the last user is done.
type TraceCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry

	// builds and hits count materializations and shared reuses; they
	// feed CacheStats (and the >= 2x wall-clock claim: a sweep's
	// generation work is builds, not builds+hits).
	builds uint64
	hits   uint64

	// acquireHook, when set, is consulted before every Acquire and may
	// fail it (fault injection in tests). A hook-failed Acquire does
	// not consume a use and must not be paired with a Release.
	acquireHook func(name string, n uint64) error
}

type cacheKey struct {
	name string
	n    uint64
}

type cacheEntry struct {
	once      sync.Once
	tr        *Trace
	err       error
	remaining int
	// pinned entries survive any number of Releases (benchmark drivers
	// that sweep the same suite repeatedly pin their specs up front).
	pinned bool
}

// NewTraceCache returns an empty cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{entries: make(map[cacheKey]*cacheEntry)}
}

// Acquire returns the materialized trace of spec's first n
// instructions, building it on first use. uses is the total number of
// Acquire calls this (spec, n) pair will receive over the cache's
// lifetime (one per sweep cell); after that many Releases the entry is
// evicted. Only the first Acquire's uses value is honored.
//
// Materialization runs outside the cache lock, so concurrent Acquires
// of different specs build in parallel while Acquires of the same spec
// block until the one build finishes.
func (c *TraceCache) Acquire(spec Spec, n uint64, uses int) (*Trace, error) {
	if uses < 1 {
		uses = 1
	}
	c.mu.Lock()
	hook := c.acquireHook
	c.mu.Unlock()
	if hook != nil {
		if err := hook(spec.Name, n); err != nil {
			return nil, fmt.Errorf("workload: acquiring trace %s: %w", spec.Name, err)
		}
	}
	key := cacheKey{name: spec.Name, n: n}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{remaining: uses}
		c.entries[key] = e
		c.builds++
	} else {
		c.hits++
	}
	c.mu.Unlock()

	e.once.Do(func() { e.tr, e.err = Materialize(spec, n) })
	return e.tr, e.err
}

// Pin materializes the (spec, n) trace and retains it for the cache's
// lifetime: subsequent Acquires are hits and Releases never evict it.
// Drivers that run the same sweep repeatedly (benchmark iterations)
// pin their specs once so re-runs skip generation entirely.
func (c *TraceCache) Pin(spec Spec, n uint64) (*Trace, error) {
	key := cacheKey{name: spec.Name, n: n}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{remaining: 1}
		c.entries[key] = e
		c.builds++
	} else {
		c.hits++
	}
	e.pinned = true
	c.mu.Unlock()

	e.once.Do(func() { e.tr, e.err = Materialize(spec, n) })
	return e.tr, e.err
}

// Release returns one use of the (spec, n) trace. When the declared
// use count is exhausted the entry is dropped, freeing the stream;
// pinned entries are never dropped.
func (c *TraceCache) Release(spec Spec, n uint64) {
	key := cacheKey{name: spec.Name, n: n}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.pinned {
		return
	}
	e.remaining--
	if e.remaining <= 0 {
		delete(c.entries, key)
	}
}

// SetAcquireHook installs (or, with nil, removes) a hook consulted
// before every Acquire. A non-nil error from the hook fails the
// Acquire without consuming a use: the caller must not Release it.
// The hook exists for deterministic fault injection in tests (see
// internal/faultinject).
func (c *TraceCache) SetAcquireHook(h func(name string, n uint64) error) {
	c.mu.Lock()
	c.acquireHook = h
	c.mu.Unlock()
}

// CacheStats reports materializations performed and shared reuses
// served, plus the number of currently resident traces.
func (c *TraceCache) CacheStats() (builds, hits uint64, resident int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.builds, c.hits, len(c.entries)
}

// String renders the cache counters (diagnostics).
func (c *TraceCache) String() string {
	builds, hits, resident := c.CacheStats()
	return fmt.Sprintf("tracecache{builds: %d, hits: %d, resident: %d}", builds, hits, resident)
}
