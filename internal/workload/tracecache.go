package workload

import (
	"fmt"
	"sync"

	"entangling/internal/trace"
)

// This file implements the suite-sweep trace cache. A configurations x
// workloads sweep used to regenerate (build the program, walk the CFG,
// synthesize data addresses for) every workload's instruction stream
// once per configuration — N_cfgs x N_specs generations of N_specs
// distinct streams. The cache materializes each spec's stream once
// into an immutable instruction slice shared read-only by every
// configuration, and evicts it as soon as the last reference is
// dropped, so a sweep's resident trace set stays proportional to the
// worker count, not the suite size.
//
// Entries are plainly refcounted: every successful Acquire takes one
// reference and the matching Release drops it. A sweep that wants a
// trace to survive the gap between one cell's Release and the next
// cell's Acquire holds one extra reference with Retain for as long as
// it still has cells of that workload outstanding (see
// harness.RunSuiteCtx). Builds are singleflighted: any number of
// concurrent Acquires of the same (spec, n) — including acquirers from
// different sweeps or server jobs sharing one cache — join exactly one
// materialization instead of racing their own.

// Trace is an immutable, materialized instruction stream. It is safe
// to share across goroutines; each reader gets its own Source.
type Trace struct {
	// Name is the workload the trace was materialized from.
	Name string
	// Instrs is the instruction stream. Readers must not mutate it.
	Instrs []trace.Instruction
}

// Source returns a fresh reader over the trace.
func (t *Trace) Source() trace.Source {
	return &trace.SliceSource{Instrs: t.Instrs}
}

// SourceAt returns a fresh reader positioned n instructions into the
// trace. A machine forked from a warmup snapshot that consumed n
// instructions resumes its measured window from exactly this source,
// reading the same remaining stream a sequential run would.
func (t *Trace) SourceAt(n uint64) trace.Source {
	s := &trace.SliceSource{Instrs: t.Instrs}
	s.Advance(int(n))
	return s
}

// Materialize builds a spec's program and walks exactly n instructions
// into an immutable trace. Two calls with the same spec and n yield
// identical streams (the walk is deterministic), which is what makes
// sharing one materialization across configurations behaviour-
// preserving.
func Materialize(spec Spec, n uint64) (*Trace, error) {
	if spec.TraceBacked() {
		return materializeTrace(spec, n)
	}
	w, err := spec.New()
	if err != nil {
		return nil, err
	}
	instrs := make([]trace.Instruction, n)
	for i := range instrs {
		if !w.Next(&instrs[i]) {
			instrs = instrs[:i]
			break
		}
	}
	return &Trace{Name: spec.Name, Instrs: instrs}, nil
}

// materializeTrace decodes the first n instructions of a trace-backed
// spec's stored payload. The decode is capped at n records, so a
// too-long stored trace costs nothing beyond the requested window; a
// decode error (the store only holds validated traces, but the opener
// is caller-supplied) fails the materialization rather than feeding a
// short stream to the simulator silently.
func materializeTrace(spec Spec, n uint64) (*Trace, error) {
	if spec.Open == nil {
		return nil, fmt.Errorf("workload %s: trace %s is not available on this node (no opener)",
			spec.Name, spec.Params.TraceSHA256)
	}
	rc, err := spec.Open()
	if err != nil {
		return nil, fmt.Errorf("workload %s: opening trace: %w", spec.Name, err)
	}
	defer rc.Close()
	rd, err := trace.NewReader(rc)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", spec.Name, err)
	}
	instrs := make([]trace.Instruction, 0, min64(n, 1<<20))
	var in trace.Instruction
	for uint64(len(instrs)) < n && rd.Next(&in) {
		instrs = append(instrs, in)
	}
	if err := rd.Err(); err != nil {
		return nil, fmt.Errorf("workload %s: decoding trace: %w", spec.Name, err)
	}
	return &Trace{Name: spec.Name, Instrs: instrs}, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// TraceCache shares materialized traces between the runs of one or
// more sweeps. Safe for concurrent use.
type TraceCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry

	// builds and hits count materializations and shared reuses; they
	// feed CacheStats (and the >= 2x wall-clock claim: a sweep's
	// generation work is builds, not builds+hits).
	builds uint64
	hits   uint64

	// acquireHook, when set, is consulted before every Acquire and may
	// fail it (fault injection in tests). A hook-failed Acquire takes
	// no reference and must not be paired with a Release.
	acquireHook func(name string, n uint64) error
}

type cacheKey struct {
	name string
	n    uint64
}

type cacheEntry struct {
	// refs is the number of outstanding references (Acquires and
	// Retains not yet Released).
	refs int
	// pinned entries survive any number of Releases (benchmark drivers
	// that sweep the same suite repeatedly pin their specs up front).
	pinned bool
	// done is closed when the build completes; tr/err are written
	// (under the cache lock) before the close, so waiters that return
	// after <-done read them race-free.
	done chan struct{}
	tr   *Trace
	err  error
}

// NewTraceCache returns an empty cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{entries: make(map[cacheKey]*cacheEntry)}
}

// Acquire returns the materialized trace of spec's first n
// instructions, building it on first use; concurrent Acquires of the
// same (spec, n) join one singleflighted build instead of racing their
// own. Every successful Acquire takes one reference that the caller
// must drop with exactly one Release; a failed Acquire takes no
// reference and must not be Released. The entry is evicted when the
// last reference is gone (unless pinned).
func (c *TraceCache) Acquire(spec Spec, n uint64) (*Trace, error) {
	c.mu.Lock()
	hook := c.acquireHook
	c.mu.Unlock()
	if hook != nil {
		if err := hook(spec.Name, n); err != nil {
			return nil, fmt.Errorf("workload: acquiring trace %s: %w", spec.Name, err)
		}
	}
	key := cacheKey{name: spec.Name, n: n}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{refs: 1, done: make(chan struct{})}
		c.entries[key] = e
		c.builds++
		c.mu.Unlock()
		return c.build(key, e, spec, n)
	}
	e.refs++
	c.hits++
	c.mu.Unlock()

	<-e.done
	if e.err != nil {
		return nil, e.err
	}
	return e.tr, nil
}

// build materializes the entry's trace and publishes the outcome. A
// failed build is evicted immediately so a later Acquire retries
// instead of being served a cached error forever.
func (c *TraceCache) build(key cacheKey, e *cacheEntry, spec Spec, n uint64) (*Trace, error) {
	tr, err := Materialize(spec, n)
	c.mu.Lock()
	e.tr, e.err = tr, err
	if c.entries[key] == e {
		if err != nil {
			// Waiters still receive err via the entry pointer; the
			// map no longer serves it.
			delete(c.entries, key)
		} else if e.refs <= 0 && !e.pinned {
			// Every acquirer released (or retained and released)
			// while the build was still running.
			delete(c.entries, key)
		}
	}
	close(e.done)
	c.mu.Unlock()
	return tr, err
}

// Retain takes one additional reference on an already-resident
// (spec, n) entry without counting a cache hit, reporting whether the
// entry was present. Sweeps use it to keep a trace alive across the
// gap between one cell's Release and the next cell's Acquire; the
// reference is dropped with a matching Release.
func (c *TraceCache) Retain(spec Spec, n uint64) bool {
	key := cacheKey{name: spec.Name, n: n}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return false
	}
	e.refs++
	return true
}

// Pin materializes the (spec, n) trace and retains it for the cache's
// lifetime: subsequent Acquires are hits and Releases never evict it.
// Drivers that run the same sweep repeatedly (benchmark iterations)
// pin their specs once so re-runs skip generation entirely.
func (c *TraceCache) Pin(spec Spec, n uint64) (*Trace, error) {
	key := cacheKey{name: spec.Name, n: n}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{pinned: true, done: make(chan struct{})}
		c.entries[key] = e
		c.builds++
		c.mu.Unlock()
		return c.build(key, e, spec, n)
	}
	e.pinned = true
	c.hits++
	c.mu.Unlock()

	<-e.done
	return e.tr, e.err
}

// Release drops one reference on the (spec, n) trace. When the last
// reference is gone the entry is evicted, freeing the stream; pinned
// entries are never evicted. Releasing an absent entry is a no-op.
func (c *TraceCache) Release(spec Spec, n uint64) {
	key := cacheKey{name: spec.Name, n: n}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.pinned {
		return
	}
	e.refs--
	if e.refs > 0 {
		return
	}
	select {
	case <-e.done:
		delete(c.entries, key)
	default:
		// Still building: deleting now would let a concurrent Acquire
		// start a second build of the same trace. The builder evicts
		// the entry itself if the refcount is still zero when the
		// build completes.
	}
}

// SetAcquireHook installs (or, with nil, removes) a hook consulted
// before every Acquire. A non-nil error from the hook fails the
// Acquire without taking a reference: the caller must not Release it.
// The hook exists for deterministic fault injection in tests (see
// internal/faultinject).
func (c *TraceCache) SetAcquireHook(h func(name string, n uint64) error) {
	c.mu.Lock()
	c.acquireHook = h
	c.mu.Unlock()
}

// CacheStats reports materializations performed and shared reuses
// served, plus the number of currently resident traces.
func (c *TraceCache) CacheStats() (builds, hits uint64, resident int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.builds, c.hits, len(c.entries)
}

// String renders the cache counters (diagnostics).
func (c *TraceCache) String() string {
	builds, hits, resident := c.CacheStats()
	return fmt.Sprintf("tracecache{builds: %d, hits: %d, resident: %d}", builds, hits, resident)
}
