package workload

import (
	"fmt"

	"entangling/internal/trace"
)

// This file bounds what a workload request may cost. The batch CLIs
// only run curated suites, but the job server (internal/server)
// materializes traces for payloads that arrive over the network: a
// hostile or fat-fingered request must be rejected by arithmetic on
// its parameters, not discovered by the OOM killer after the trace
// generator has already committed gigabytes.

// Budget caps the resources one workload trace may consume. The zero
// value means "no limit" for every field; servers use DefaultBudget.
type Budget struct {
	// MaxTraceInstrs caps the materialized stream length
	// (warmup+measure): the dominant allocation, sizeof(Instruction)
	// bytes per instruction.
	MaxTraceInstrs uint64
	// MaxStaticInstrs caps the synthesized program size
	// (Functions x MeanBlocks x MeanBlockInstrs).
	MaxStaticInstrs uint64
	// MaxDataFootprint caps the modeled heap region.
	MaxDataFootprint uint64
	// MaxCallDepth caps the walker's simulated call stack.
	MaxCallDepth int
}

// DefaultBudget returns limits comfortably above every curated suite
// and figure windows (paperfigs runs 3M-instruction cells over
// programs of ~10^5 static instructions) while keeping a single
// request's trace under ~1 GiB.
func DefaultBudget() Budget {
	return Budget{
		MaxTraceInstrs:   16_000_000,
		MaxStaticInstrs:  2_000_000,
		MaxDataFootprint: 1 << 28, // 256 MiB
		MaxCallDepth:     1 << 12,
	}
}

// Check validates spec's parameters and verifies that materializing
// its first traceLen instructions stays inside the budget. It returns
// the first violation, or nil.
func (b Budget) Check(spec Spec, traceLen uint64) error {
	p := spec.Params
	if err := p.Validate(); err != nil {
		return err
	}
	if b.MaxTraceInstrs > 0 && traceLen > b.MaxTraceInstrs {
		return fmt.Errorf("workload %s: trace of %d instructions exceeds budget %d",
			spec.Name, traceLen, b.MaxTraceInstrs)
	}
	if spec.TraceBacked() {
		// Ingested traces have no program shape; the stream-length cap
		// above (and the decode-time Limits at ingest) are the budget.
		return nil
	}
	static := uint64(p.Functions) * uint64(p.MeanBlocks) * uint64(p.MeanBlockInstrs)
	if b.MaxStaticInstrs > 0 && static > b.MaxStaticInstrs {
		return fmt.Errorf("workload %s: ~%d static instructions exceed budget %d",
			spec.Name, static, b.MaxStaticInstrs)
	}
	if b.MaxDataFootprint > 0 && p.DataFootprint > b.MaxDataFootprint {
		return fmt.Errorf("workload %s: data footprint %d bytes exceeds budget %d",
			spec.Name, p.DataFootprint, b.MaxDataFootprint)
	}
	if b.MaxCallDepth > 0 && p.MaxCallDepth > b.MaxCallDepth {
		return fmt.Errorf("workload %s: call depth %d exceeds budget %d",
			spec.Name, p.MaxCallDepth, b.MaxCallDepth)
	}
	return nil
}

// DecodeLimits translates the budget into the streaming-decode caps a
// trace ingest must run under: the instruction cap is the budget's
// stream-length cap, the byte cap is supplied by the transport (which
// knows its own body limit). This is the satellite fix for budgets
// that used to run only after full materialization — the decoder now
// enforces them record by record.
func (b Budget) DecodeLimits(maxBytes uint64) trace.Limits {
	return trace.Limits{MaxInstrs: b.MaxTraceInstrs, MaxBytes: maxBytes}
}
