package workload

import (
	"math"
	"math/rand/v2"
)

// TermKind is the static terminator class of a basic block.
type TermKind uint8

// Block terminator kinds.
const (
	TermFallthrough  TermKind = iota
	TermCond                  // conditional branch to TargetBlock
	TermJump                  // unconditional direct jump to TargetBlock
	TermCall                  // direct call to Callee, then fall through
	TermIndirectCall          // indirect call to one of ITargets
	TermReturn                // return to caller
)

// InstrSize is the fixed instruction size in bytes. The CVP traces the
// paper evaluates on come from an ARM-based (Qualcomm) core, so a fixed
// 4-byte encoding is the faithful choice.
const InstrSize = 4

// CodeBase is the virtual address where the synthetic code region
// starts.
const CodeBase = 0x0040_0000

// Block is a static basic block.
type Block struct {
	// Addr is the virtual address of the first instruction.
	Addr uint64
	// NInstr is the number of instructions including the terminator.
	NInstr int
	// Term classifies the terminator (the last instruction).
	Term TermKind
	// TargetBlock is the intra-function target block index for
	// TermCond and TermJump.
	TargetBlock int
	// TakenBias is the taken probability for TermCond.
	TakenBias float64
	// Callee is the target function index for TermCall.
	Callee int
	// ITargets are the candidate function indices for TermIndirectCall.
	ITargets []int
}

// LastPC returns the address of the terminator instruction.
func (b *Block) LastPC() uint64 { return b.Addr + uint64(b.NInstr-1)*InstrSize }

// Func is a static function: a contiguous run of basic blocks.
type Func struct {
	// Blocks in layout order; Blocks[0].Addr is the entry point.
	Blocks []Block
}

// Entry returns the function entry address.
func (f *Func) Entry() uint64 { return f.Blocks[0].Addr }

// Program is the static synthetic program.
type Program struct {
	// Funcs holds every function; Funcs[0] is the driver the walk
	// starts in and restarts from when the call stack empties.
	Funcs []Func
	// Params are the parameters the program was built from.
	Params Params
	// FootprintBytes is the total code size including inter-function
	// padding.
	FootprintBytes uint64
}

// BuildProgram constructs the static program for p. Construction is a
// pure function of p (including p.Seed).
func BuildProgram(p Params) (*Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(p.Seed, 0xC0DE))
	prog := &Program{Params: p, Funcs: make([]Func, p.Functions)}

	addr := uint64(CodeBase)
	for fi := range prog.Funcs {
		nblocks := 1 + geometric(rng, float64(p.MeanBlocks))
		if fi == 0 && nblocks < 12 {
			// The driver must be big enough to dispatch work; a
			// one-block driver would return to itself forever.
			nblocks = 12
		}
		blocks := make([]Block, nblocks)
		for bi := range blocks {
			n := 1 + geometric(rng, float64(p.MeanBlockInstrs))
			if n > 48 {
				n = 48
			}
			blocks[bi] = Block{Addr: addr, NInstr: n}
			addr += uint64(n) * InstrSize
		}
		// Inter-function padding: real linkers align and pad; this also
		// prevents every function from sharing lines with its neighbour.
		addr += uint64(rng.IntN(4)) * 16
		addr = (addr + 15) &^ 15
		prog.Funcs[fi] = Func{Blocks: blocks}
	}
	prog.FootprintBytes = addr - CodeBase

	// Assign terminators. The driver (function 0) is made call-heavy so
	// the dynamic walk traverses the program broadly, as a server
	// request-dispatch loop would.
	for fi := range prog.Funcs {
		f := &prog.Funcs[fi]
		callFrac, condFrac := p.CallFrac, p.CondFrac
		if fi == 0 {
			callFrac, condFrac = 0.55, 0.30
		}
		// loopFloor is the first block a backward branch may target:
		// normally just past the most recent call site, so loops rarely
		// re-execute calls. Unrestricted call-in-loop at every nesting
		// level would make excursion times grow exponentially with call
		// depth, freezing the walk inside one subtree.
		loopFloor := 0
		// Only the first backward branch in a function gets the full
		// trip count; the rest are short inner loops. Several long
		// overlapping loops would multiply into near-absorbing orbits
		// (escape time grows as the product of trip counts).
		longLoopUsed := false
		for bi := range f.Blocks {
			b := &f.Blocks[bi]
			if bi == len(f.Blocks)-1 {
				b.Term = TermReturn
				continue
			}
			if fi == 0 && bi%2 == 0 {
				// Driver dispatch site: an indirect call that can reach
				// DriverFanout distinct functions, like a request/event
				// dispatch loop. This sets the breadth of the
				// steady-state instruction working set.
				b.Term = TermIndirectCall
				fanout := p.DriverFanout
				if fanout > p.Functions-1 {
					fanout = p.Functions - 1
				}
				if fanout < 1 {
					fanout = 1
				}
				b.ITargets = make([]int, fanout)
				for i := range b.ITargets {
					// Uniform over all functions: dispatch breadth is
					// what distinguishes the categories, independent of
					// the skew of ordinary call sites.
					b.ITargets[i] = 1 + rng.IntN(p.Functions-1)
				}
				loopFloor = bi + 1
				continue
			}
			u := rng.Float64()
			switch {
			case u < condFrac:
				b.Term = TermCond
				if bi > 0 && rng.Float64() < p.LoopBackProb {
					// Backward branch: loop over the preceding region,
					// normally without re-entering call sites (a 5%
					// minority are genuine call-in-loop sites).
					floor := loopFloor
					if rng.Float64() < 0.05 {
						floor = 0
					}
					if floor > bi {
						floor = bi
					}
					b.TargetBlock = floor + rng.IntN(bi-floor+1)
					// Taken bias so the mean trip count is LoopIterMean
					// (first loop) or a short inner-loop count.
					mean := p.LoopIterMean
					if longLoopUsed && mean > 3 {
						mean = 3
					}
					longLoopUsed = true
					b.TakenBias = mean / (mean + 1)
				} else {
					// Forward branch skipping 1..3 blocks. Real branch
					// sites are mostly strongly biased (error paths,
					// guards); only a minority are data-dependent
					// coin flips — the mix a real predictor sees.
					b.TargetBlock = min(bi+1+rng.IntN(3)+1, len(f.Blocks)-1)
					switch u := rng.Float64(); {
					case u < 0.40:
						b.TakenBias = 0.03
					case u < 0.78:
						b.TakenBias = 0.97
					default:
						b.TakenBias = p.CondTakenBias
					}
				}
			case u < condFrac+callFrac:
				b.Term = TermCall
				b.Callee = pickCallee(rng, p, fi)
				loopFloor = bi + 1
			case u < condFrac+callFrac+p.IndirectFrac:
				b.Term = TermIndirectCall
				n := 3 + rng.IntN(4)
				b.ITargets = make([]int, n)
				for i := range b.ITargets {
					b.ITargets[i] = pickCallee(rng, p, fi)
				}
				loopFloor = bi + 1
			case u < condFrac+callFrac+p.IndirectFrac+p.JumpFrac:
				b.Term = TermJump
				b.TargetBlock = min(bi+1+rng.IntN(3), len(f.Blocks)-1)
			default:
				b.Term = TermFallthrough
			}
		}
	}
	return prog, nil
}

// pickCallee selects a call target with a power-law (Zipf-like)
// distribution over functions: CallSkew > 1 concentrates mass on the
// low-indexed ("hot") functions, which is how desktop/crypto code
// behaves; server workloads use a flatter skew, spreading fetches over
// their huge footprint.
func pickCallee(rng *rand.Rand, p Params, self int) int {
	for {
		u := rng.Float64()
		idx := int(math.Pow(u, p.CallSkew) * float64(p.Functions))
		if idx >= p.Functions {
			idx = p.Functions - 1
		}
		if idx != self {
			return idx
		}
		// Avoid trivial self-recursion; retry.
		if p.Functions == 1 {
			return self
		}
	}
}

// geometric samples a geometric-ish value with the given mean (>= 0).
func geometric(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Inverse CDF of geometric with success prob 1/(mean+1).
	u := rng.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	g := int(math.Log(1-u) / math.Log(mean/(mean+1)))
	if g < 0 {
		g = 0
	}
	return g
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
