package workload

import (
	"math"
	"math/rand/v2"

	"entangling/internal/trace"
)

// Walker interprets a Program's control-flow graph and yields the
// dynamic instruction stream. It implements trace.Source.
//
// The walk is deterministic: two walkers built from the same Program
// (hence the same Params.Seed) produce identical streams, which is what
// makes per-workload comparisons between prefetchers meaningful.
type Walker struct {
	prog *Program
	rng  *rand.Rand
	data *dataGen

	fn, blk, idx int
	stack        []frame
	count        uint64

	// curSeed is the current frame's deterministic decision stream: a
	// xorshift64 state derived from (callee, flavor) at dispatch and
	// from (parent seed, call site) for nested calls. Draws from it
	// make a request subtree replay identically across visits —
	// the long-range determinism real instruction streams have.
	curSeed uint64

	// perm maps power-law rank to function index for indirect calls;
	// reshuffled every PhaseLen instructions when phases are enabled.
	// permScratch is the rotation buffer reused across reshuffles.
	perm        []int
	permScratch []int
	nextPhase   uint64

	// JIT layout churn (CodePhaseLen > 0): fnOff[fi] displaces function
	// fi from its static address; relocArena is the next free address
	// relocated code is placed at, growing monotonically so a moved
	// function never lands on addresses any earlier phase used.
	fnOff      []uint64
	relocArena uint64
	nextReloc  uint64

	// Interrupt excursions (InterruptEvery > 0): nextIntr is the count
	// at which the next handler fires; intrAt is the stack depth of the
	// active excursion (0 = none), preventing nested interrupts.
	nextIntr uint64
	intrAt   int

	// Serverless cold starts (ColdEvery > 0): every restart shifts all
	// code addresses by epochStride, so the new epoch shares no cache
	// lines or predictor indices with any previous one.
	epochBase   uint64
	epochStride uint64
	nextCold    uint64
}

type frame struct {
	fn, blk, idx int
	seed         uint64
}

// NewWalker creates a walker at the program entry.
func NewWalker(prog *Program) *Walker {
	w := &Walker{
		prog:  prog,
		rng:   rand.New(rand.NewPCG(prog.Params.Seed, 0x57A1C)),
		data:  newDataGen(prog.Params),
		stack: make([]frame, 0, prog.Params.MaxCallDepth+1),
		perm:  make([]int, len(prog.Funcs)),
	}
	for i := range w.perm {
		w.perm[i] = i
	}
	if prog.Params.PhaseLen > 0 {
		w.nextPhase = prog.Params.PhaseLen
	}
	if prog.Params.CodePhaseLen > 0 {
		w.fnOff = make([]uint64, len(prog.Funcs))
		// The relocation arena sits far above the static code region so
		// no phase can alias addresses still reachable through it.
		w.relocArena = CodeBase + 1<<30
		w.nextReloc = prog.Params.CodePhaseLen
	}
	if prog.Params.InterruptEvery > 0 {
		w.nextIntr = prog.Params.InterruptEvery
	}
	if prog.Params.ColdEvery > 0 {
		// Epochs are spaced a 4 MiB-aligned stride past the code
		// footprint, so consecutive mappings are disjoint at every
		// cache and predictor granularity the model indexes by.
		w.epochStride = (prog.FootprintBytes>>22 + 1) << 22
		w.nextCold = prog.Params.ColdEvery
	}
	w.curSeed = mix64(prog.Params.Seed ^ 0xD15EA5E)
	return w
}

// addr maps a static address of function fn to its current dynamic
// address, applying the function's JIT relocation offset and the cold
// epoch base. With both features off it is the identity.
func (w *Walker) addr(fn int, a uint64) uint64 {
	if w.fnOff != nil {
		a += w.fnOff[fn]
	}
	return a + w.epochBase
}

// mix64 is splitmix64's finalizer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rand01 draws the next control decision in [0,1). Inside the driver
// (the request mix) and for a small PathNoise fraction of decisions it
// is truly random; otherwise it comes from the frame's deterministic
// stream.
func (w *Walker) rand01() float64 {
	p := &w.prog.Params
	if w.fn == 0 || w.rng.Float64() < p.PathNoise {
		return w.rng.Float64()
	}
	w.curSeed ^= w.curSeed << 13
	w.curSeed ^= w.curSeed >> 7
	w.curSeed ^= w.curSeed << 17
	return float64(w.curSeed>>11) / (1 << 53)
}

// Count returns the number of instructions emitted so far.
func (w *Walker) Count() uint64 { return w.count }

// Depth returns the current call-stack depth.
func (w *Walker) Depth() int { return len(w.stack) }

// Next implements trace.Source. The stream is unbounded; wrap the
// walker in a trace.LimitSource to bound a run.
func (w *Walker) Next(in *trace.Instruction) bool {
	p := &w.prog.Params
	if w.nextPhase != 0 && w.count >= w.nextPhase {
		w.reshufflePhase()
		w.nextPhase += p.PhaseLen
	}
	if w.nextCold != 0 && w.count >= w.nextCold {
		w.coldRestart()
		w.nextCold += p.ColdEvery
	}
	if w.nextReloc != 0 && w.count >= w.nextReloc {
		w.relocate()
		w.nextReloc += p.CodePhaseLen
	}
	if w.nextIntr != 0 && w.count >= w.nextIntr {
		if w.intrAt == 0 && len(w.stack) < p.MaxCallDepth {
			w.emitInterrupt(in)
			return true
		}
		// Inside a handler or at the depth cap: retry shortly after.
		w.nextIntr = w.count + 64
	}
	f := &w.prog.Funcs[w.fn]
	b := &f.Blocks[w.blk]
	pc := w.addr(w.fn, b.Addr+uint64(w.idx)*InstrSize)

	*in = trace.Instruction{PC: pc, Size: InstrSize}
	w.count++

	if w.idx < b.NInstr-1 {
		// Body instruction: maybe a memory op, then advance.
		w.decorateMemOp(in)
		w.idx++
		return true
	}

	// Terminator instruction.
	switch b.Term {
	case TermFallthrough:
		w.decorateMemOp(in)
		w.advanceBlock(w.blk + 1)

	case TermCond:
		in.Branch = trace.CondBranch
		target := &f.Blocks[b.TargetBlock]
		in.Target = w.addr(w.fn, target.Addr)
		if w.rand01() < b.TakenBias {
			in.Taken = true
			w.setBlock(w.fn, b.TargetBlock)
		} else {
			w.advanceBlock(w.blk + 1)
		}

	case TermJump:
		in.Branch = trace.DirectJump
		in.Taken = true
		in.Target = w.addr(w.fn, f.Blocks[b.TargetBlock].Addr)
		w.setBlock(w.fn, b.TargetBlock)

	case TermCall:
		w.emitCall(in, b.Callee, trace.DirectCall)

	case TermIndirectCall:
		// Dynamic target selection through the phase permutation: the
		// same call site reaches different callees over time, which is
		// what defeats purely static BTB-directed schemes. Selection is
		// Zipf-like over the target table (hot head, long tail).
		skew := w.prog.Params.DispatchSkew
		if skew < 1 {
			skew = 1
		}
		idx := int(math.Pow(w.rand01(), skew) * float64(len(b.ITargets)))
		if idx >= len(b.ITargets) {
			idx = len(b.ITargets) - 1
		}
		callee := w.perm[b.ITargets[idx]]
		w.emitCall(in, callee, trace.IndirectCall)

	case TermReturn:
		in.Branch = trace.Return
		in.Taken = true
		if len(w.stack) > 0 {
			fr := w.stack[len(w.stack)-1]
			w.stack = w.stack[:len(w.stack)-1]
			w.fn, w.blk, w.idx = fr.fn, fr.blk, fr.idx
			w.curSeed = fr.seed
			if w.intrAt > len(w.stack) {
				// The active interrupt excursion just returned; the
				// interrupted instruction re-executes next.
				w.intrAt = 0
			}
			in.Target = w.currentPC()
		} else {
			// Stack empty: restart the driver, as a top-level event
			// loop would.
			w.setBlock(0, 0)
			in.Target = w.currentPC()
		}
	}
	return true
}

// emitCall emits a call terminator and transfers control, respecting
// the depth cap (at the cap the call is emitted as a plain instruction,
// i.e. the callee is treated as inlined-away/predicated-off).
func (w *Walker) emitCall(in *trace.Instruction, callee int, kind trace.BranchType) {
	if len(w.stack) >= w.prog.Params.MaxCallDepth {
		w.advanceBlock(w.blk + 1)
		return
	}
	in.Branch = kind
	in.Taken = true
	in.Target = w.addr(callee, w.prog.Funcs[callee].Entry())
	// Return site: the block after the call, or loop the function if
	// the call ends it.
	retBlk, retIdx := w.blk+1, 0
	if retBlk >= len(w.prog.Funcs[w.fn].Blocks) {
		retBlk = len(w.prog.Funcs[w.fn].Blocks) - 1
		retIdx = w.prog.Funcs[w.fn].Blocks[retBlk].NInstr - 1
	}
	w.stack = append(w.stack, frame{w.fn, retBlk, retIdx, w.curSeed})

	// The callee's decision stream: a dispatched request picks one of
	// PathFlavors deterministic variants; a nested call inherits
	// determinism from its parent and call site.
	if w.fn == 0 {
		flavor := uint64(w.rng.IntN(w.prog.Params.PathFlavors))
		w.curSeed = mix64(uint64(callee)<<8 ^ flavor ^ w.prog.Params.Seed<<1)
	} else {
		w.curSeed = mix64(w.curSeed ^ uint64(w.blk)<<32 ^ uint64(callee))
	}
	w.setBlock(callee, 0)
}

func (w *Walker) currentPC() uint64 {
	b := &w.prog.Funcs[w.fn].Blocks[w.blk]
	return w.addr(w.fn, b.Addr+uint64(w.idx)*InstrSize)
}

// emitInterrupt fires an asynchronous excursion: the current
// instruction is replaced by an indirect call into a handler function,
// and the saved frame re-executes the interrupted instruction when the
// handler returns — the same PC fetched twice, with an arbitrary
// handler body in between.
func (w *Walker) emitInterrupt(in *trace.Instruction) {
	p := &w.prog.Params
	handler := len(w.prog.Funcs) - p.InterruptFns + w.rng.IntN(p.InterruptFns)
	*in = trace.Instruction{
		PC:     w.currentPC(),
		Size:   InstrSize,
		Branch: trace.IndirectCall,
		Taken:  true,
		Target: w.addr(handler, w.prog.Funcs[handler].Entry()),
	}
	w.count++
	w.stack = append(w.stack, frame{w.fn, w.blk, w.idx, w.curSeed})
	w.intrAt = len(w.stack)
	// Handlers run deterministically per (handler, epoch-ish) identity:
	// the same handler does the same work every time it fires.
	w.curSeed = mix64(uint64(handler)<<8 ^ p.Seed ^ 0xA5A5_1234)
	w.setBlock(handler, 0)
	w.nextIntr = w.count + p.InterruptEvery/2 + uint64(w.rng.IntN(int(p.InterruptEvery)))
}

// coldRestart begins a fresh serverless epoch: the call stack clears,
// the walk restarts at the driver entry, and every code address moves
// to a disjoint mapping, so the front end warms from zero.
func (w *Walker) coldRestart() {
	w.stack = w.stack[:0]
	w.intrAt = 0
	w.epochBase += w.epochStride
	w.curSeed = mix64(w.prog.Params.Seed ^ w.epochBase)
	w.setBlock(0, 0)
}

// relocate starts a JIT code phase: each non-driver function moves
// with probability CodeRelocFrac to a fresh arena address. Entangled
// pairs, BTB entries and cache lines learned at the old addresses are
// dead weight afterwards. Functions live on the call stack stay put —
// a JIT cannot move a frame that is executing — which also keeps the
// emitted PC stream continuous across a relocation phase.
func (w *Walker) relocate() {
	p := &w.prog.Params
	live := map[int]bool{w.fn: true}
	for _, fr := range w.stack {
		live[fr.fn] = true
	}
	for fi := 1; fi < len(w.prog.Funcs); fi++ {
		if w.rng.Float64() >= p.CodeRelocFrac || live[fi] {
			continue
		}
		f := &w.prog.Funcs[fi]
		last := &f.Blocks[len(f.Blocks)-1]
		span := last.Addr + uint64(last.NInstr)*InstrSize - f.Entry()
		w.fnOff[fi] = w.relocArena - f.Entry()
		w.relocArena = (w.relocArena + span + 63) &^ 63
	}
}

// advanceBlock moves to block bi of the current function, returning
// from the function when bi runs off the end.
func (w *Walker) advanceBlock(bi int) {
	if bi >= len(w.prog.Funcs[w.fn].Blocks) {
		bi = len(w.prog.Funcs[w.fn].Blocks) - 1
	}
	w.setBlock(w.fn, bi)
}

func (w *Walker) setBlock(fn, blk int) {
	w.fn, w.blk, w.idx = fn, blk, 0
}

func (w *Walker) decorateMemOp(in *trace.Instruction) {
	p := &w.prog.Params
	u := w.rand01()
	switch {
	case u < p.LoadFrac:
		in.IsLoad = true
		in.DataAddr = w.data.next(w.rng, len(w.stack))
	case u < p.LoadFrac+p.StoreFrac:
		in.IsStore = true
		in.DataAddr = w.data.next(w.rng, len(w.stack))
	}
}

// reshufflePhase rotates the indirect-call permutation, shifting the
// hot set of functions (cloud workloads' phase behaviour).
func (w *Walker) reshufflePhase() {
	n := len(w.perm)
	// Rotate by a random amount and swap a random sample; keeps most
	// structure while moving the working set.
	rot := 1 + w.rng.IntN(n-1)
	if w.permScratch == nil {
		w.permScratch = make([]int, n)
	}
	rotated := w.permScratch
	for i := range w.perm {
		rotated[i] = w.perm[(i+rot)%n]
	}
	copy(w.perm, rotated)
	for i := 0; i < n/8; i++ {
		a, b := w.rng.IntN(n), w.rng.IntN(n)
		w.perm[a], w.perm[b] = w.perm[b], w.perm[a]
	}
}

// dataGen synthesizes data addresses: mostly stack-frame reuse (fast
// L1D hits), a sequential heap stream, and occasional random accesses
// across the data footprint. The data side only needs to load the
// backend realistically; no data prefetcher is modelled (the paper
// evaluates instruction prefetching in isolation).
type dataGen struct {
	stackBase  uint64
	heapBase   uint64
	heapSize   uint64
	streamSize uint64
	streamPos  uint64
}

func newDataGen(p Params) *dataGen {
	size := p.DataFootprint
	if size < 1<<12 {
		size = 1 << 12
	}
	// The sequential stream reuses a hot window that fits in the LLC,
	// as real working sets do; only the pointer-chase slice touches the
	// whole footprint. Without this, the stream would cycle-evict the
	// code from the LLC and every instruction miss would pay a DRAM
	// round trip, which no real server workload exhibits.
	stream := size
	if stream > 1<<19 {
		stream = 1 << 19
	}
	return &dataGen{
		stackBase:  0x7fff_ffff_0000,
		heapBase:   0x0000_6000_0000,
		heapSize:   size,
		streamSize: stream,
	}
}

func (d *dataGen) next(rng *rand.Rand, depth int) uint64 {
	u := rng.Float64()
	switch {
	case u < 0.60:
		// Stack frame of the current depth: heavy reuse.
		frame := d.stackBase - uint64(depth)*256
		return frame - uint64(rng.IntN(240))
	case u < 0.96:
		// Sequential heap stream over the hot window.
		d.streamPos = (d.streamPos + 8 + uint64(rng.IntN(16))) % d.streamSize
		return d.heapBase + d.streamPos
	default:
		// Occasional pointer chase over the footprint.
		return d.heapBase + uint64(rng.Uint64()%d.heapSize)&^7
	}
}
