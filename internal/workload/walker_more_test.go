package workload

import (
	"testing"

	"entangling/internal/trace"
)

func TestWalkerDepthNeverExceedsCap(t *testing.T) {
	p := Preset(Srv)
	p.Seed = 8
	p.MaxCallDepth = 6
	prog, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalker(prog)
	var in trace.Instruction
	for i := 0; i < 100_000; i++ {
		w.Next(&in)
		if w.Depth() > 6 {
			t.Fatalf("depth %d exceeds cap at instr %d", w.Depth(), i)
		}
	}
}

func TestDriverDispatchSitesExist(t *testing.T) {
	for _, c := range []Category{Crypto, Int, FP, Srv, Cloud} {
		p := Preset(c)
		p.Seed = 4
		prog, err := BuildProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		driver := prog.Funcs[0]
		dispatch := 0
		for _, b := range driver.Blocks {
			if b.Term == TermIndirectCall {
				if len(b.ITargets) == 0 {
					t.Fatalf("%s: dispatch site without targets", c)
				}
				dispatch++
			}
		}
		if dispatch == 0 {
			t.Errorf("%s: driver has no dispatch sites", c)
		}
		want := p.DriverFanout
		if want > p.Functions-1 {
			want = p.Functions - 1
		}
		for _, b := range driver.Blocks {
			if b.Term == TermIndirectCall && len(b.ITargets) != want {
				t.Errorf("%s: dispatch fanout %d, want %d", c, len(b.ITargets), want)
			}
		}
	}
}

func TestDataGenClasses(t *testing.T) {
	p := Preset(Srv)
	p.Seed = 12
	prog, _ := BuildProgram(p)
	w := NewWalker(prog)
	var in trace.Instruction
	var stack, heap int
	for i := 0; i < 300_000; i++ {
		w.Next(&in)
		if !in.IsLoad && !in.IsStore {
			continue
		}
		switch {
		case in.DataAddr > 0x7000_0000_0000:
			stack++
		case in.DataAddr >= 0x6000_0000:
			heap++
		default:
			t.Fatalf("data address %#x in no known region", in.DataAddr)
		}
	}
	if stack == 0 || heap == 0 {
		t.Errorf("data classes unbalanced: stack=%d heap=%d", stack, heap)
	}
	// Stack accesses dominate (the 60% class).
	if stack < heap {
		t.Errorf("stack (%d) should outnumber heap (%d)", stack, heap)
	}
}

func TestWalkerCountMonotone(t *testing.T) {
	p := Preset(Crypto)
	p.Seed = 3
	prog, _ := BuildProgram(p)
	w := NewWalker(prog)
	var in trace.Instruction
	for i := uint64(1); i <= 10_000; i++ {
		w.Next(&in)
		if w.Count() != i {
			t.Fatalf("Count = %d at step %d", w.Count(), i)
		}
	}
}

func TestSpecNewIndependentStreams(t *testing.T) {
	specs := CVPSuite(1)
	a, err := specs[0].New()
	if err != nil {
		t.Fatal(err)
	}
	b, err := specs[0].New()
	if err != nil {
		t.Fatal(err)
	}
	var x, y trace.Instruction
	for i := 0; i < 10_000; i++ {
		a.Next(&x)
		b.Next(&y)
		if x != y {
			t.Fatal("two walkers from the same spec diverge")
		}
	}
}

func TestVarySeedZeroStillValid(t *testing.T) {
	p := Vary(Preset(Int), 0)
	p.Name = "zero"
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	prog, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalker(prog)
	var in trace.Instruction
	if !w.Next(&in) {
		t.Fatal("empty stream for seed 0")
	}
}
