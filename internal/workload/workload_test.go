package workload

import (
	"testing"

	"entangling/internal/trace"
)

func TestPresetsValidate(t *testing.T) {
	for _, c := range []Category{Crypto, Int, FP, Srv, Cloud, JIT, Micro, Serverless} {
		p := Preset(c)
		p.Name = string(c)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", c, err)
		}
	}
}

func TestPresetUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown category")
		}
	}()
	Preset(Category("bogus"))
}

func TestValidateRejectsBadParams(t *testing.T) {
	base := Preset(Int)
	cases := []func(*Params){
		func(p *Params) { p.Functions = 0 },
		func(p *Params) { p.MeanBlocks = 0 },
		func(p *Params) { p.MeanBlockInstrs = 0 },
		func(p *Params) { p.MaxCallDepth = 0 },
		func(p *Params) { p.CallFrac = 0.9; p.CondFrac = 0.9 },
		func(p *Params) { p.LoopIterMean = -1 },
	}
	for i, mutate := range cases {
		p := base
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestVaryIsDeterministicAndDistinct(t *testing.T) {
	base := Preset(Srv)
	a := Vary(base, 1)
	b := Vary(base, 1)
	c := Vary(base, 2)
	if a != b {
		t.Error("Vary not deterministic for equal seeds")
	}
	if a == c {
		t.Error("Vary produced identical params for different seeds")
	}
	if a.Seed != 1 || c.Seed != 2 {
		t.Error("Vary did not set Seed")
	}
}

func TestBuildProgramLayout(t *testing.T) {
	p := Preset(Int)
	p.Name = "layout"
	p.Seed = 99
	prog, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) != p.Functions {
		t.Fatalf("got %d functions, want %d", len(prog.Funcs), p.Functions)
	}
	var prevEnd uint64 = CodeBase
	for fi, f := range prog.Funcs {
		if len(f.Blocks) == 0 {
			t.Fatalf("func %d has no blocks", fi)
		}
		if f.Entry() < prevEnd {
			t.Fatalf("func %d overlaps previous (entry %#x < %#x)", fi, f.Entry(), prevEnd)
		}
		addr := f.Blocks[0].Addr
		for bi, b := range f.Blocks {
			if b.Addr != addr {
				t.Fatalf("func %d block %d not contiguous", fi, bi)
			}
			if b.NInstr < 1 || b.NInstr > 48 {
				t.Fatalf("func %d block %d NInstr=%d out of range", fi, bi, b.NInstr)
			}
			addr += uint64(b.NInstr) * InstrSize
			switch b.Term {
			case TermCond, TermJump:
				if b.TargetBlock < 0 || b.TargetBlock >= len(f.Blocks) {
					t.Fatalf("func %d block %d target out of range", fi, bi)
				}
			case TermCall:
				if b.Callee < 0 || b.Callee >= len(prog.Funcs) {
					t.Fatalf("func %d block %d callee out of range", fi, bi)
				}
				if b.Callee == fi {
					t.Fatalf("func %d block %d trivially self-recursive", fi, bi)
				}
			case TermIndirectCall:
				if len(b.ITargets) == 0 {
					t.Fatalf("func %d block %d has no indirect targets", fi, bi)
				}
			}
		}
		last := f.Blocks[len(f.Blocks)-1]
		if last.Term != TermReturn {
			t.Fatalf("func %d does not end in return", fi)
		}
		prevEnd = addr
	}
	if prog.FootprintBytes == 0 {
		t.Error("zero footprint")
	}
}

func TestBuildProgramDeterministic(t *testing.T) {
	p := Preset(Crypto)
	p.Seed = 7
	a, err := BuildProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := BuildProgram(p)
	if a.FootprintBytes != b.FootprintBytes || len(a.Funcs) != len(b.Funcs) {
		t.Fatal("program construction not deterministic")
	}
	for fi := range a.Funcs {
		if len(a.Funcs[fi].Blocks) != len(b.Funcs[fi].Blocks) {
			t.Fatalf("func %d block count differs", fi)
		}
	}
}

func TestWalkerStreamConsistency(t *testing.T) {
	// JIT and Micro join the battery: relocation skips live frames and
	// interrupts transfer control via calls, so their streams keep full
	// PC continuity. Serverless is excluded here — a cold restart is a
	// legitimate discontinuity — and has its own consistency test.
	for _, cat := range []Category{Crypto, Int, Srv, JIT, Micro} {
		p := Preset(cat)
		p.Name = string(cat)
		p.Seed = 11
		prog, err := BuildProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		w := NewWalker(prog)
		var in trace.Instruction
		var prev trace.Instruction
		have := false
		for i := 0; i < 200_000; i++ {
			if !w.Next(&in) {
				t.Fatalf("%s: walker ended", cat)
			}
			if in.Size != InstrSize {
				t.Fatalf("%s: bad size %d", cat, in.Size)
			}
			if have && prev.NextPC() != in.PC {
				t.Fatalf("%s: discontinuity without branch at instr %d: %#x -> %#x (%s)",
					cat, i, prev.PC, in.PC, trace.Describe(&prev))
			}
			if in.Branch.IsUnconditional() && !in.Taken {
				t.Fatalf("%s: untaken unconditional branch", cat)
			}
			prev, have = in, true
			if w.Depth() > p.MaxCallDepth {
				t.Fatalf("%s: depth %d exceeds cap %d", cat, w.Depth(), p.MaxCallDepth)
			}
		}
		if w.Count() != 200_000 {
			t.Fatalf("%s: Count=%d", cat, w.Count())
		}
	}
}

func TestWalkerDeterministic(t *testing.T) {
	p := Preset(Srv)
	p.Seed = 3
	prog, _ := BuildProgram(p)
	w1 := NewWalker(prog)
	w2 := NewWalker(prog)
	var a, b trace.Instruction
	for i := 0; i < 50_000; i++ {
		w1.Next(&a)
		w2.Next(&b)
		if a != b {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestWalkerFootprintsByCategory(t *testing.T) {
	// srv must have a far larger touched-code footprint than crypto —
	// that is the property the paper's categories hinge on.
	touched := func(cat Category) int {
		p := Preset(cat)
		p.Seed = 5
		prog, _ := BuildProgram(p)
		w := NewWalker(prog)
		lines := make(map[uint64]struct{})
		var in trace.Instruction
		for i := 0; i < 500_000; i++ {
			w.Next(&in)
			lines[in.PC>>6] = struct{}{}
		}
		return len(lines)
	}
	crypto, srv := touched(Crypto), touched(Srv)
	if srv < 4*crypto {
		t.Errorf("srv footprint (%d lines) not >> crypto (%d lines)", srv, crypto)
	}
	// srv should comfortably exceed the 512-line L1I.
	if srv < 1500 {
		t.Errorf("srv touched only %d lines; too small to stress a 512-line L1I", srv)
	}
}

func TestWalkerBranchMix(t *testing.T) {
	p := Preset(Srv)
	p.Seed = 13
	prog, _ := BuildProgram(p)
	w := NewWalker(prog)
	var in trace.Instruction
	var branches, calls, rets, loads int
	const n = 300_000
	for i := 0; i < n; i++ {
		w.Next(&in)
		if in.Branch.IsBranch() {
			branches++
		}
		if in.Branch.IsCall() {
			calls++
		}
		if in.Branch == trace.Return {
			rets++
		}
		if in.IsLoad {
			loads++
		}
	}
	if branches < n/20 {
		t.Errorf("too few branches: %d/%d", branches, n)
	}
	if calls == 0 || rets == 0 {
		t.Error("no calls or returns in srv stream")
	}
	// Calls and returns must roughly balance in steady state.
	if diff := calls - rets; diff < -calls/2 || diff > calls/2 {
		t.Errorf("calls (%d) and returns (%d) unbalanced", calls, rets)
	}
	if loads < n/20 {
		t.Errorf("too few loads: %d/%d", loads, n)
	}
}

func TestCVPSuite(t *testing.T) {
	specs := CVPSuite(3)
	if len(specs) != 12 {
		t.Fatalf("got %d specs, want 12", len(specs))
	}
	seen := make(map[string]bool)
	for _, s := range specs {
		if seen[s.Name] {
			t.Errorf("duplicate spec name %q", s.Name)
		}
		seen[s.Name] = true
		if err := s.Params.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		w, err := s.New()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		var in trace.Instruction
		if !w.Next(&in) {
			t.Fatalf("%s: empty stream", s.Name)
		}
	}
	if len(CVPSuite(0)) != 4 {
		t.Error("CVPSuite(0) should clamp to 1 per category")
	}
}

func TestCloudSuite(t *testing.T) {
	specs := CloudSuite()
	if len(specs) != 4 {
		t.Fatalf("got %d cloud specs", len(specs))
	}
	names := map[string]bool{"cassandra": true, "cloud9": true, "nutch": true, "streaming": true}
	for _, s := range specs {
		if !names[s.Name] {
			t.Errorf("unexpected name %q", s.Name)
		}
		if err := s.Params.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if s.Params.Category != Cloud {
			t.Errorf("%s: category %q", s.Name, s.Params.Category)
		}
	}
}

func TestPhaseReshuffleChangesIndirectTargets(t *testing.T) {
	p := Preset(Cloud)
	p.Seed = 21
	p.PhaseLen = 50_000
	prog, _ := BuildProgram(p)
	w := NewWalker(prog)
	// Record indirect-call targets before and after several phases.
	targets := func(n int) map[uint64]int {
		m := make(map[uint64]int)
		var in trace.Instruction
		for i := 0; i < n; i++ {
			w.Next(&in)
			if in.Branch == trace.IndirectCall {
				m[in.Target]++
			}
		}
		return m
	}
	before := targets(50_000)
	_ = targets(100_000) // burn through a phase boundary
	after := targets(50_000)
	if len(before) == 0 || len(after) == 0 {
		t.Skip("no indirect calls observed; preset too sparse for this seed")
	}
	common := 0
	for k := range after {
		if _, ok := before[k]; ok {
			common++
		}
	}
	if common == len(after) && len(after) == len(before) {
		t.Error("phase reshuffle did not change the indirect target set")
	}
}

func TestGeometricMean(t *testing.T) {
	prog, _ := BuildProgram(Preset(Int))
	_ = prog
	// geometric() sanity: mean of samples should be near the requested mean.
	p := Preset(Int)
	p.Seed = 17
	// Access via block sizes: mean NInstr should be near MeanBlockInstrs+1.
	prog2, _ := BuildProgram(p)
	var sum, n float64
	for _, f := range prog2.Funcs {
		for _, b := range f.Blocks {
			sum += float64(b.NInstr)
			n++
		}
	}
	mean := sum / n
	want := float64(p.MeanBlockInstrs + 1)
	if mean < want*0.6 || mean > want*1.4 {
		t.Errorf("mean block size %.2f, want near %.2f", mean, want)
	}
}
