package workload

import (
	"fmt"
	"io"
)

// Spec names a workload and carries its fully derived parameters.
type Spec struct {
	Name   string
	Params Params

	// Open, when non-nil, streams the stored ENTRACE1 payload of a
	// trace-backed workload (Params.TraceSHA256 non-empty). It is
	// excluded from JSON deliberately: fleet assignments marshal Specs
	// over the wire, and trace content only exists on the node that
	// stores it — trace-backed cells are gated to local dispatch.
	Open TraceOpener `json:"-"`
}

// TraceOpener returns a fresh reader over a stored trace payload.
type TraceOpener func() (io.ReadCloser, error)

// TraceBacked reports whether the spec replays an ingested trace
// rather than walking a synthesized program.
func (s Spec) TraceBacked() bool { return s.Params.TraceSHA256 != "" }

// TraceSpec builds the Spec for an ingested trace: the content address
// is the workload's entire identity (it feeds warmup classes and cell
// fingerprints through Params), and open streams the stored payload.
func TraceSpec(name, sha256hex string, open TraceOpener) Spec {
	return Spec{
		Name: name,
		Params: Params{
			Name:        name,
			Category:    TraceCat,
			TraceSHA256: sha256hex,
		},
		Open: open,
	}
}

// New builds the program and walker for a spec.
func (s Spec) New() (*Walker, error) {
	if s.TraceBacked() {
		return nil, fmt.Errorf("workload %s: trace-backed specs have no program to walk; materialize via a TraceCache", s.Name)
	}
	prog, err := BuildProgram(s.Params)
	if err != nil {
		return nil, err
	}
	return NewWalker(prog), nil
}

// CVPSuite returns the synthetic stand-in for the paper's 959 CVP
// workloads: perCategory workloads in each of the four categories
// (crypto, compute_int, compute_fp, srv), each an independent seeded
// variant of the category preset. The paper's suite is dominated by srv
// traces in influence (they have the highest MPKI); the synthetic suite
// keeps the four categories balanced and lets the harness weight them.
func CVPSuite(perCategory int) []Spec {
	if perCategory < 1 {
		perCategory = 1
	}
	cats := []Category{Crypto, Int, FP, Srv}
	specs := make([]Spec, 0, len(cats)*perCategory)
	for _, c := range cats {
		base := Preset(c)
		for i := 0; i < perCategory; i++ {
			seed := uint64(0xABCD)*uint64(i+1) + uint64(len(c))*7919
			p := Vary(base, splitmix64(seed^uint64(i)<<32)|1)
			p.Name = fmt.Sprintf("%s-%02d", c, i)
			p.Category = c
			specs = append(specs, Spec{Name: p.Name, Params: p})
		}
	}
	return specs
}

// CloudSuite returns the four CloudSuite-like workloads of Figure 16.
// Each has its own twist on the cloud preset, mirroring the qualitative
// differences between the real applications: cassandra (storage, deep
// call chains), cloud9 (JS engine, big code + hot interpreter loop),
// nutch (crawler, moderate footprint), streaming (media, smaller code
// with periodic control).
func CloudSuite() []Spec {
	base := Preset(Cloud)

	cassandra := Vary(base, 0xCA55A)
	cassandra.Name = "cassandra"
	cassandra.Functions = 2600
	cassandra.MaxCallDepth = 64

	cloud9 := Vary(base, 0xC10D9)
	cloud9.Name = "cloud9"
	cloud9.Functions = 3000
	cloud9.LoopBackProb = 0.25
	cloud9.LoopIterMean = 12

	nutch := Vary(base, 0x9A7C4)
	nutch.Name = "nutch"
	nutch.Functions = 1400
	nutch.PhaseLen = 250_000

	streaming := Vary(base, 0x57EAA)
	streaming.Name = "streaming"
	streaming.Functions = 900
	streaming.MeanBlockInstrs = 12
	streaming.LoopBackProb = 0.30

	specs := []Spec{
		{Name: "cassandra", Params: cassandra},
		{Name: "cloud9", Params: cloud9},
		{Name: "nutch", Params: nutch},
		{Name: "streaming", Params: streaming},
	}
	for i := range specs {
		specs[i].Params.Category = Cloud
	}
	return specs
}

// AdversarialSuite returns the three adversarial presets: workloads
// built to violate the stability assumptions history-based instruction
// prefetchers rely on. jit-phases relocates hot code under the
// prefetcher; micro-burst interleaves requests with asynchronous
// interrupt excursions; serverless-cold restarts at a fresh code
// mapping every epoch so nothing learned ever amortizes.
func AdversarialSuite() []Spec {
	mk := func(c Category, name string, seed uint64) Spec {
		p := Preset(c)
		p.Name = name
		p.Seed = seed
		return Spec{Name: name, Params: p}
	}
	return []Spec{
		mk(JIT, "jit-phases", 0x317AB1E),
		mk(Micro, "micro-burst", 0x51CE7),
		mk(Serverless, "serverless-cold", 0xC01D57A7),
	}
}
