// Package workload synthesizes deterministic instruction streams that
// stand in for the paper's proprietary Qualcomm CVP-1/CVP-2 traces and
// the CloudSuite traces (§IV-A).
//
// A workload is built in two steps. First a static program is laid out:
// functions composed of basic blocks, placed sequentially in a virtual
// code region, with a static control-flow graph (conditional branches,
// loops, direct and indirect calls, returns) whose shape is drawn from
// per-category parameters. Second, a dynamic walker interprets that
// graph with a seeded RNG, yielding the correct-path instruction stream
// the CPU model consumes.
//
// The categories reproduce the *statistical* properties the Entangling
// prefetcher (and its competitors) are sensitive to: instruction
// footprint relative to the 32KB L1I, depth and recurrence of call
// chains, basic-block size distribution, and branch behaviour. They do
// not reproduce instruction semantics, which no prefetcher in the paper
// observes.
package workload

import "fmt"

// Category labels match the CVP workload classes used throughout the
// paper's evaluation, plus the CloudSuite class of Figure 16.
type Category string

// Workload categories.
const (
	Crypto Category = "crypto"
	Int    Category = "int"
	FP     Category = "fp"
	Srv    Category = "srv"
	Cloud  Category = "cloud"

	// JIT models a managed-runtime process whose code layout is not
	// stable: a tier-up compiler periodically recompiles (and moves) a
	// fraction of the hot functions, so learned PC-indexed state keeps
	// pointing at dead addresses.
	JIT Category = "jit"
	// Micro models a microservice under interrupt pressure: a srv-like
	// request mix punctuated by asynchronous excursions into handler
	// code that evict the front-end working set at unpredictable
	// points.
	Micro Category = "micro"
	// Serverless models function-as-a-service cold starts: every N
	// instructions the process restarts at a fresh code mapping, so the
	// L1I and BTB start cold again (the motivation PAPERS.md cites for
	// cold-start-dominated fleets).
	Serverless Category = "serverless"

	// TraceCat marks trace-backed workloads (ingested real traces, not
	// synthesized programs). It has no Preset.
	TraceCat Category = "trace"
)

// Params fully determines a synthetic workload (together with Seed).
type Params struct {
	// Name identifies the workload in reports, e.g. "srv-07".
	Name string
	// Category is the workload class.
	Category Category
	// Seed drives both static program construction and the dynamic walk.
	Seed uint64

	// Functions is the number of functions in the program.
	Functions int
	// MeanBlocks is the average number of basic blocks per function.
	MeanBlocks int
	// MeanBlockInstrs is the average number of instructions per block.
	MeanBlockInstrs int

	// CallFrac is the probability that a block terminator is a direct
	// call.
	CallFrac float64
	// IndirectFrac is the probability that a block terminator is an
	// indirect call.
	IndirectFrac float64
	// JumpFrac is the probability that a block terminator is a direct
	// jump.
	JumpFrac float64
	// CondFrac is the probability that a block terminator is a
	// conditional branch.
	CondFrac float64

	// LoopBackProb is the probability that a conditional branch targets
	// an earlier block (forming a loop).
	LoopBackProb float64
	// LoopIterMean is the mean trip count of loops.
	LoopIterMean float64
	// CondTakenBias is the taken probability of forward conditional
	// branches.
	CondTakenBias float64

	// CallSkew concentrates call targets on few hot functions; larger
	// values mean a flatter (server-like) distribution is NOT used —
	// skew > 1 concentrates, 1 is uniform-ish.
	CallSkew float64
	// MaxCallDepth bounds the simulated call stack.
	MaxCallDepth int

	// LoadFrac and StoreFrac are per-instruction probabilities of
	// memory operations (non-terminator instructions only).
	LoadFrac  float64
	StoreFrac float64
	// DataFootprint is the size of the heap data region in bytes.
	DataFootprint uint64

	// PhaseLen, when non-zero, reshuffles the indirect-call target
	// permutation every PhaseLen dynamic instructions, modelling the
	// phase changes of long-running cloud services.
	PhaseLen uint64

	// DriverFanout is how many distinct functions the driver's dispatch
	// sites can reach (vtable/event-loop breadth). It controls the
	// steady-state instruction working set: request-driven server code
	// disperses over far more code per unit time than a crypto kernel.
	DriverFanout int
	// DispatchSkew is the runtime popularity skew of dispatch-site
	// target selection (u^skew over the target table): request mixes
	// are Zipf-like, so a hot head of the table gets most traffic while
	// the tail keeps the footprint large.
	DispatchSkew float64

	// PathFlavors is the number of deterministic control-flow variants
	// per dispatched request. Real request handlers execute (almost)
	// deterministically given the request type; without this long-range
	// determinism, the recurring source->destination correlations that
	// history-based instruction prefetchers exploit would not exist.
	PathFlavors int
	// PathNoise is the fraction of control decisions that remain truly
	// random (data-dependent branches), keeping predictors and
	// prefetchers below perfect.
	PathNoise float64

	// CodePhaseLen, when non-zero, relocates a random CodeRelocFrac of
	// the functions to fresh addresses every CodePhaseLen dynamic
	// instructions — a JIT tier-up that recompiles hot code elsewhere.
	// Entangled pairs and BTB entries learned at the old addresses
	// never hit again.
	CodePhaseLen uint64
	// CodeRelocFrac is the fraction of functions moved per code phase
	// (in [0,1]; meaningful only with CodePhaseLen > 0).
	CodeRelocFrac float64

	// InterruptEvery, when non-zero, diverts the walk roughly every
	// InterruptEvery instructions into one of the last InterruptFns
	// functions (the "interrupt handlers"), returning to the
	// interrupted instruction afterwards — asynchronous excursions at
	// points no history-based predictor can correlate with the
	// interrupted code.
	InterruptEvery uint64
	// InterruptFns is how many trailing functions serve as interrupt
	// handlers (>= 1 when InterruptEvery > 0; must leave at least the
	// driver plus one callee outside the handler set).
	InterruptFns int

	// ColdEvery, when non-zero, restarts the walk every ColdEvery
	// instructions at the driver entry inside a fresh code mapping
	// (every address shifted to a new epoch base): a serverless cold
	// start, where the L1I, BTB and prefetcher state warm from zero.
	ColdEvery uint64

	// TraceSHA256, when non-empty, marks a trace-backed workload: the
	// stream comes from an ingested trace with this content address,
	// not from a synthesized program, and every program-shape field
	// above is ignored. It feeds the workload's identity (warmup
	// classes, cell fingerprints) the same way program parameters do
	// for synthetic workloads.
	TraceSHA256 string
}

// Validate reports the first structural problem with p, or nil.
func (p *Params) Validate() error {
	if p.TraceSHA256 != "" {
		// Trace-backed: the stream is stored bytes, already validated
		// at ingest; there is no program shape to check.
		return nil
	}
	switch {
	case p.Functions < 1:
		return fmt.Errorf("workload %s: Functions must be >= 1", p.Name)
	case p.MeanBlocks < 1:
		return fmt.Errorf("workload %s: MeanBlocks must be >= 1", p.Name)
	case p.MeanBlockInstrs < 1:
		return fmt.Errorf("workload %s: MeanBlockInstrs must be >= 1", p.Name)
	case p.MaxCallDepth < 1:
		return fmt.Errorf("workload %s: MaxCallDepth must be >= 1", p.Name)
	case p.CallFrac+p.IndirectFrac+p.JumpFrac+p.CondFrac > 1.0:
		return fmt.Errorf("workload %s: terminator fractions exceed 1", p.Name)
	case p.LoopIterMean < 0:
		return fmt.Errorf("workload %s: LoopIterMean must be >= 0", p.Name)
	case p.DriverFanout < 1:
		return fmt.Errorf("workload %s: DriverFanout must be >= 1", p.Name)
	case p.PathFlavors < 1:
		return fmt.Errorf("workload %s: PathFlavors must be >= 1", p.Name)
	case p.PathNoise < 0 || p.PathNoise > 1:
		return fmt.Errorf("workload %s: PathNoise must be in [0,1]", p.Name)
	case p.CodeRelocFrac < 0 || p.CodeRelocFrac > 1:
		return fmt.Errorf("workload %s: CodeRelocFrac must be in [0,1]", p.Name)
	case p.InterruptEvery > 0 && p.InterruptFns < 1:
		return fmt.Errorf("workload %s: InterruptEvery needs InterruptFns >= 1", p.Name)
	case p.InterruptEvery > 0 && p.InterruptFns > p.Functions-2:
		return fmt.Errorf("workload %s: InterruptFns %d leaves fewer than 2 non-handler functions",
			p.Name, p.InterruptFns)
	case p.InterruptEvery == 0 && p.InterruptFns != 0:
		return fmt.Errorf("workload %s: InterruptFns without InterruptEvery", p.Name)
	}
	return nil
}

// Preset returns the base parameters for a category. The footprints are
// chosen relative to the 32KB L1I so baseline MPKI falls in the ranges
// the paper reports: crypto slightly above the cache size (the paper
// keeps only traces with >= 1 MPKI), int/fp a few times larger, srv an
// order of magnitude larger with deep, flat call graphs.
func Preset(c Category) Params {
	switch c {
	case Crypto:
		return Params{
			Category: Crypto, Functions: 280, MeanBlocks: 6, MeanBlockInstrs: 12,
			CallFrac: 0.10, IndirectFrac: 0.01, JumpFrac: 0.08, CondFrac: 0.45,
			LoopBackProb: 0.45, LoopIterMean: 24, CondTakenBias: 0.35,
			CallSkew: 2.2, MaxCallDepth: 24,
			LoadFrac: 0.22, StoreFrac: 0.10, DataFootprint: 1 << 16,
			DriverFanout: 20, DispatchSkew: 2.0, PathFlavors: 2, PathNoise: 0.02,
		}
	case Int:
		return Params{
			Category: Int, Functions: 900, MeanBlocks: 7, MeanBlockInstrs: 8,
			CallFrac: 0.14, IndirectFrac: 0.02, JumpFrac: 0.08, CondFrac: 0.50,
			LoopBackProb: 0.30, LoopIterMean: 10, CondTakenBias: 0.40,
			CallSkew: 1.5, MaxCallDepth: 32,
			LoadFrac: 0.26, StoreFrac: 0.12, DataFootprint: 1 << 21,
			DriverFanout: 400, DispatchSkew: 1.8, PathFlavors: 4, PathNoise: 0.04,
		}
	case FP:
		return Params{
			Category: FP, Functions: 650, MeanBlocks: 6, MeanBlockInstrs: 16,
			CallFrac: 0.10, IndirectFrac: 0.01, JumpFrac: 0.06, CondFrac: 0.40,
			LoopBackProb: 0.45, LoopIterMean: 25, CondTakenBias: 0.30,
			CallSkew: 1.7, MaxCallDepth: 24,
			LoadFrac: 0.30, StoreFrac: 0.14, DataFootprint: 1 << 22,
			DriverFanout: 100, DispatchSkew: 1.8, PathFlavors: 2, PathNoise: 0.03,
		}
	case Srv:
		return Params{
			Category: Srv, Functions: 1500, MeanBlocks: 8, MeanBlockInstrs: 7,
			CallFrac: 0.10, IndirectFrac: 0.04, JumpFrac: 0.08, CondFrac: 0.45,
			LoopBackProb: 0.22, LoopIterMean: 8, CondTakenBias: 0.45,
			CallSkew: 1.2, MaxCallDepth: 40,
			LoadFrac: 0.28, StoreFrac: 0.14, DataFootprint: 1 << 22,
			DriverFanout: 400, DispatchSkew: 2.2, PathFlavors: 4, PathNoise: 0.03,
		}
	case Cloud:
		return Params{
			Category: Cloud, Functions: 2200, MeanBlocks: 8, MeanBlockInstrs: 7,
			CallFrac: 0.10, IndirectFrac: 0.06, JumpFrac: 0.08, CondFrac: 0.45,
			LoopBackProb: 0.15, LoopIterMean: 5, CondTakenBias: 0.45,
			CallSkew: 1.05, MaxCallDepth: 56,
			LoadFrac: 0.28, StoreFrac: 0.14, DataFootprint: 1 << 22,
			DriverFanout: 900, DispatchSkew: 1.6, PathFlavors: 8, PathNoise: 0.05,
			PhaseLen: 400_000,
		}
	case JIT:
		// An int-like core whose layout churns: roughly a third of the
		// functions move every code phase, so the prefetcher relearns a
		// moving target. Phases are a few hundred k instructions — long
		// enough to warm entangled pairs, short enough that staleness
		// dominates steady state.
		return Params{
			Category: JIT, Functions: 800, MeanBlocks: 7, MeanBlockInstrs: 8,
			CallFrac: 0.13, IndirectFrac: 0.03, JumpFrac: 0.08, CondFrac: 0.48,
			LoopBackProb: 0.28, LoopIterMean: 9, CondTakenBias: 0.40,
			CallSkew: 1.5, MaxCallDepth: 32,
			LoadFrac: 0.25, StoreFrac: 0.12, DataFootprint: 1 << 21,
			DriverFanout: 350, DispatchSkew: 1.8, PathFlavors: 4, PathNoise: 0.04,
			CodePhaseLen: 250_000, CodeRelocFrac: 0.35,
		}
	case Micro:
		// A srv-like request mix with interrupt-heavy excursions: every
		// few thousand instructions an asynchronous handler hijacks the
		// front end mid-request, then control returns to the exact
		// interrupted instruction. The handlers are a small, hot set —
		// they stay cached, but the excursion points are uncorrelated
		// with the interrupted code.
		return Params{
			Category: Micro, Functions: 1400, MeanBlocks: 8, MeanBlockInstrs: 7,
			CallFrac: 0.10, IndirectFrac: 0.04, JumpFrac: 0.08, CondFrac: 0.45,
			LoopBackProb: 0.22, LoopIterMean: 8, CondTakenBias: 0.45,
			CallSkew: 1.2, MaxCallDepth: 40,
			LoadFrac: 0.28, StoreFrac: 0.14, DataFootprint: 1 << 22,
			DriverFanout: 380, DispatchSkew: 2.0, PathFlavors: 4, PathNoise: 0.03,
			InterruptEvery: 4_000, InterruptFns: 24,
		}
	case Serverless:
		// Function-as-a-service churn: every cold interval the process
		// restarts at a fresh code mapping, so the L1I and BTB warm
		// from zero. Moderate footprint (FaaS functions are small), but
		// nothing learned in one epoch transfers to the next.
		return Params{
			Category: Serverless, Functions: 600, MeanBlocks: 7, MeanBlockInstrs: 8,
			CallFrac: 0.12, IndirectFrac: 0.03, JumpFrac: 0.08, CondFrac: 0.46,
			LoopBackProb: 0.25, LoopIterMean: 8, CondTakenBias: 0.42,
			CallSkew: 1.4, MaxCallDepth: 28,
			LoadFrac: 0.26, StoreFrac: 0.12, DataFootprint: 1 << 20,
			DriverFanout: 250, DispatchSkew: 1.8, PathFlavors: 4, PathNoise: 0.03,
			ColdEvery: 300_000,
		}
	default:
		panic(fmt.Sprintf("workload: unknown category %q", c))
	}
}

// Vary derives a per-seed variant of p: each workload in a suite gets
// parameters jittered around the category preset (so the 48 synthetic
// workloads are not 48 reruns of one program). The jitter is a pure
// function of the seed.
func Vary(p Params, seed uint64) Params {
	r := splitmix64(seed)
	jitter := func(v float64, frac float64) float64 {
		r = splitmix64(r)
		u := float64(r>>11) / (1 << 53) // [0,1)
		return v * (1 - frac + 2*frac*u)
	}
	jitterInt := func(v int, frac float64) int {
		j := int(jitter(float64(v), frac) + 0.5)
		if j < 1 {
			j = 1
		}
		return j
	}
	out := p
	out.Seed = seed
	out.Functions = jitterInt(p.Functions, 0.30)
	out.MeanBlocks = jitterInt(p.MeanBlocks, 0.25)
	out.MeanBlockInstrs = jitterInt(p.MeanBlockInstrs, 0.25)
	out.CallFrac = clamp01(jitter(p.CallFrac, 0.25))
	out.IndirectFrac = clamp01(jitter(p.IndirectFrac, 0.25))
	out.CondFrac = clamp01(jitter(p.CondFrac, 0.15))
	out.LoopBackProb = clamp01(jitter(p.LoopBackProb, 0.25))
	out.LoopIterMean = jitter(p.LoopIterMean, 0.40)
	out.CondTakenBias = clamp01(jitter(p.CondTakenBias, 0.20))
	out.CallSkew = jitter(p.CallSkew, 0.20)
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 0.95 {
		return 0.95
	}
	return v
}

// splitmix64 is the standard 64-bit mix used for deterministic
// parameter derivation (independent of math/rand stream state).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
